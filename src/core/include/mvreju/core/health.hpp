#pragma once

// Event-driven health process of the multi-version ML system — the runtime
// twin of the DSPN models (Figures 2 and 3): modules drift from healthy (H)
// through compromised (C) to non-functional (N) under exponential
// compromise/failure clocks; reactive rejuvenation repairs non-functional
// modules one at a time; a deterministic proactive clock periodically
// rejuvenates one (randomly selected) functional module, deferring to
// reactive rejuvenation (the Pac latch of the DSPN).
//
// The statistics of this engine are validated against the exact DSPN steady
// state in tests/core_health_test.cpp.

#include <cstdint>
#include <vector>

#include "mvreju/reliability/functions.hpp"
#include "mvreju/util/rng.hpp"

namespace mvreju::core {

enum class ModuleState {
    healthy,
    compromised,
    nonfunctional,          ///< crashed; waiting for / under reactive rejuvenation
    rejuvenating_proactive, ///< healthy/compromised module taken down on purpose
};

/// True when the module is producing (possibly wrong) outputs.
[[nodiscard]] constexpr bool is_functional(ModuleState s) noexcept {
    return s == ModuleState::healthy || s == ModuleState::compromised;
}

/// How the proactive mechanism picks its victim among functional modules.
enum class VictimPolicy {
    weighted_table1,          ///< P(compromised) = #C / (#C + #H), per Table I
    two_thirds_compromised,   ///< 2/3 prioritise compromised (Section VII-A)
    compromised_first,        ///< always clean a compromised module if any
    uniform,                  ///< uniform over functional modules (ablation)
};

struct HealthEngineConfig {
    int modules = 3;
    bool proactive = true;
    VictimPolicy policy = VictimPolicy::weighted_table1;
    reliability::TimingParams timing;  ///< Table IV defaults
    std::uint64_t seed = 42;
};

/// Aggregate event counters (for reporting and tests).
struct HealthStats {
    std::size_t compromises = 0;
    std::size_t failures = 0;
    std::size_t reactive_rejuvenations = 0;   ///< completed
    std::size_t proactive_rejuvenations = 0;  ///< completed
    std::size_t proactive_triggers = 0;
    std::size_t deferred_triggers = 0;  ///< triggers latched behind reactive work
};

/// Deterministic (under seed) event-driven simulation of the module health
/// process. Time is continuous and starts at 0 with all modules healthy.
class HealthEngine {
public:
    explicit HealthEngine(const HealthEngineConfig& config);

    /// Process all events up to and including time t (monotonic; t must not
    /// decrease across calls).
    void advance_to(double t);

    [[nodiscard]] double now() const noexcept { return now_; }
    [[nodiscard]] int module_count() const noexcept;
    [[nodiscard]] ModuleState state(int module) const;
    [[nodiscard]] bool functional(int module) const;

    /// Counts of modules per state: (healthy, compromised, non-functional)
    /// where non-functional includes reactive and proactive rejuvenation.
    struct Counts {
        int healthy = 0;
        int compromised = 0;
        int nonfunctional = 0;
    };
    [[nodiscard]] Counts counts() const;

    [[nodiscard]] const HealthStats& stats() const noexcept { return stats_; }

    /// Completion time of the most recent rejuvenation (reactive or
    /// proactive); negative when none has completed yet. Feeds the
    /// last-rejuvenation age reported by /healthz.
    [[nodiscard]] double last_rejuvenation_time() const noexcept {
        return last_rejuvenation_time_;
    }

    /// Force a module into the compromised state now (fault injection hook).
    void force_compromise(int module);
    /// Force a module crash now.
    void force_failure(int module);

private:
    // Rates follow the single-server semantics of the DSPN default (one
    // shared compromise/failure/repair clock regardless of how many modules
    // are eligible); the affected module is drawn uniformly when the shared
    // clock fires. This matches the solver configuration that reproduces the
    // paper's Table V.
    void resample_compromise();
    void resample_failure();
    void start_reactive_if_possible(double at);
    void try_start_proactive(double at);
    [[nodiscard]] int pick_among(ModuleState wanted);
    [[nodiscard]] int pick_victim();

    /// Time of the next discrete event (infinity if none).
    [[nodiscard]] double next_event_time() const;
    void process_next_event();

    HealthEngineConfig config_;
    util::Rng rng_;
    double now_ = 0.0;
    std::vector<ModuleState> states_;
    double next_compromise_;        ///< shared H->C clock (inf when no H)
    double next_failure_;           ///< shared C->N clock (inf when no C)
    double reactive_done_;          ///< completion of the running reactive repair
    double proactive_done_;         ///< completion of the running proactive repair
    double next_trigger_;           ///< deterministic proactive clock
    bool action_latched_ = false;   ///< Pac: trigger waiting for g2
    int reactive_active_ = -1;      ///< module under reactive repair, -1 none
    int proactive_active_ = -1;     ///< module under proactive repair, -1 none
    double last_rejuvenation_time_ = -1.0;
    HealthStats stats_;
};

}  // namespace mvreju::core
