#pragma once

// Builders for the paper's DSPN models (Fig. 2 and Fig. 3) and the
// steady-state reliability analysis that produces Table V and Fig. 4.
//
// Net transcription (see DESIGN.md section 4 for the full rationale):
//   Pmh --Tc(exp)--> Pmc --Tf(exp)--> Pmf --Tr(exp)--> Pmh       (Fig. 2)
// plus, with proactive rejuvenation (Fig. 3):
//   Prc --Trc(det 1/gamma)--> Ptr
//   Tac (immediate): latch a trigger token into Pac while none pending
//   Trt (immediate): Ptr -> Prc, restarting the clock
//   Trj1 (immediate, weight w1): Pac + Pmc -> Pmr   (rejuvenate compromised)
//   Trj2 (immediate, weight w2): Pac + Pmh -> Pmr   (rejuvenate healthy)
//   Trj (exp, rate mu_r): Pmr -> Pmh
// Guard g2 (#Pmf + #Pmr < 1) gives reactive rejuvenation precedence; the
// Pac token waits until no module is non-functional.

#include "mvreju/dspn/net.hpp"
#include "mvreju/dspn/reachability.hpp"
#include "mvreju/reliability/functions.hpp"

namespace mvreju::core {

/// Weight family for the proactive victim choice (Trj1 vs Trj2).
enum class VictimWeights {
    table1,      ///< w1 = #Pmc/(#Pmc+#Pmh): uniform over functional modules
    two_thirds,  ///< w1 = 2/3 whenever a compromised module exists (Sec. VII-A)
    healthy_only ///< w1 ~ 0: never prioritise compromised (ablation)
};

/// How transition rates scale with enabling tokens.
enum class ServerSemantics {
    single,   ///< constant rate while enabled (TimeNET default)
    infinite  ///< rate proportional to the token count (one clock per module)
};

/// Configuration of a multi-version ML DSPN instance.
struct DspnConfig {
    int modules = 3;                  ///< 1, 2 or 3 ML modules
    bool proactive = true;            ///< include the Fig. 3 rejuvenation clock
    reliability::TimingParams timing; ///< Table IV timing defaults
    // Single-server (constant-rate) semantics is the TimeNET default and
    // reproduces the paper's Table V no-rejuvenation column to 1e-6.
    ServerSemantics compromise_semantics = ServerSemantics::single;
    ServerSemantics failure_semantics = ServerSemantics::single;
    VictimWeights victim_weights = VictimWeights::table1;  ///< Table I default
    // Reactive/proactive rejuvenation are one-module-at-a-time by design.
};

/// A built net plus the place handles needed for rewards and guards.
struct MultiVersionDspn {
    dspn::PetriNet net;
    dspn::PlaceId pmh{};  ///< healthy modules
    dspn::PlaceId pmc{};  ///< compromised modules
    dspn::PlaceId pmf{};  ///< non-functional modules
    // Proactive-only places (valid when `proactive`):
    dspn::PlaceId pmr{};  ///< module under proactive rejuvenation
    dspn::PlaceId prc{};  ///< rejuvenation clock armed
    dspn::PlaceId ptr{};  ///< rejuvenation triggered
    dspn::PlaceId pac{};  ///< rejuvenation action pending
    dspn::TransitionId trc{};  ///< the deterministic clock transition
    bool proactive = false;
    int modules = 0;

    /// (i, j, k) of a marking: healthy, compromised, non-functional counts.
    /// A module under proactive rejuvenation counts as non-functional.
    [[nodiscard]] int healthy(const dspn::Marking& m) const { return tokens(m, pmh); }
    [[nodiscard]] int compromised(const dspn::Marking& m) const { return tokens(m, pmc); }
    [[nodiscard]] int nonfunctional(const dspn::Marking& m) const {
        int k = tokens(m, pmf);
        if (proactive) k += tokens(m, pmr);
        return k;
    }
};

/// Build the DSPN of Fig. 2 (reactive only) or Fig. 3 (with the proactive
/// time-triggered rejuvenation clock) for 1-3 modules.
[[nodiscard]] MultiVersionDspn build_multiversion_dspn(const DspnConfig& config);

/// Expected steady-state output reliability E[R_sys] (Eq. 3): solves the
/// DSPN exactly and weights each state with the Section V-B reliability of
/// its (i, j, k) configuration.
[[nodiscard]] double steady_state_reliability(const DspnConfig& config,
                                              const reliability::Params& params);

/// As above but reusing an already built model/graph (for parameter sweeps
/// that only vary the reward parameters).
[[nodiscard]] double steady_state_reliability(const MultiVersionDspn& model,
                                              const dspn::ReachabilityGraph& graph,
                                              const std::vector<double>& pi,
                                              const reliability::Params& params);

}  // namespace mvreju::core
