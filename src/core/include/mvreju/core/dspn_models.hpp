#pragma once

// Builders for the paper's DSPN models (Fig. 2 and Fig. 3) and the
// steady-state reliability analysis that produces Table V and Fig. 4.
//
// Net transcription (see DESIGN.md section 4 for the full rationale):
//   Pmh --Tc(exp)--> Pmc --Tf(exp)--> Pmf --Tr(exp)--> Pmh       (Fig. 2)
// plus, with proactive rejuvenation (Fig. 3):
//   Prc --Trc(det 1/gamma)--> Ptr
//   Tac (immediate): latch a trigger token into Pac while none pending
//   Trt (immediate): Ptr -> Prc, restarting the clock
//   Trj1 (immediate, weight w1): Pac + Pmc -> Pmr   (rejuvenate compromised)
//   Trj2 (immediate, weight w2): Pac + Pmh -> Pmr   (rejuvenate healthy)
//   Trj (exp, rate mu_r): Pmr -> Pmh
// Guard g2 (#Pmf + #Pmr < 1) gives reactive rejuvenation precedence; the
// Pac token waits until no module is non-functional.

#include "mvreju/dspn/net.hpp"
#include "mvreju/dspn/reachability.hpp"
#include "mvreju/reliability/functions.hpp"

namespace mvreju::core {

/// Weight family for the proactive victim choice (Trj1 vs Trj2).
enum class VictimWeights {
    table1,      ///< w1 = #Pmc/(#Pmc+#Pmh): uniform over functional modules
    two_thirds,  ///< w1 = 2/3 whenever a compromised module exists (Sec. VII-A)
    healthy_only ///< w1 ~ 0: never prioritise compromised (ablation)
};

/// How transition rates scale with enabling tokens.
enum class ServerSemantics {
    single,   ///< constant rate while enabled (TimeNET default)
    infinite  ///< rate proportional to the token count (one clock per module)
};

/// Configuration of a multi-version ML DSPN instance.
struct DspnConfig {
    int modules = 3;                  ///< 1, 2 or 3 ML modules
    bool proactive = true;            ///< include the Fig. 3 rejuvenation clock
    reliability::TimingParams timing; ///< Table IV timing defaults
    // Single-server (constant-rate) semantics is the TimeNET default and
    // reproduces the paper's Table V no-rejuvenation column to 1e-6.
    ServerSemantics compromise_semantics = ServerSemantics::single;
    ServerSemantics failure_semantics = ServerSemantics::single;
    VictimWeights victim_weights = VictimWeights::table1;  ///< Table I default
    // Reactive/proactive rejuvenation are one-module-at-a-time by design.
};

/// A built net plus the place handles needed for rewards and guards.
struct MultiVersionDspn {
    dspn::PetriNet net;
    dspn::PlaceId pmh{};  ///< healthy modules
    dspn::PlaceId pmc{};  ///< compromised modules
    dspn::PlaceId pmf{};  ///< non-functional modules
    // Proactive-only places (valid when `proactive`):
    dspn::PlaceId pmr{};  ///< module under proactive rejuvenation
    dspn::PlaceId prc{};  ///< rejuvenation clock armed
    dspn::PlaceId ptr{};  ///< rejuvenation triggered
    dspn::PlaceId pac{};  ///< rejuvenation action pending
    dspn::TransitionId trc{};  ///< the deterministic clock transition
    bool proactive = false;
    int modules = 0;

    /// (i, j, k) of a marking: healthy, compromised, non-functional counts.
    /// A module under proactive rejuvenation counts as non-functional.
    [[nodiscard]] int healthy(const dspn::Marking& m) const { return tokens(m, pmh); }
    [[nodiscard]] int compromised(const dspn::Marking& m) const { return tokens(m, pmc); }
    [[nodiscard]] int nonfunctional(const dspn::Marking& m) const {
        int k = tokens(m, pmf);
        if (proactive) k += tokens(m, pmr);
        return k;
    }
};

/// Build the DSPN of Fig. 2 (reactive only) or Fig. 3 (with the proactive
/// time-triggered rejuvenation clock) for 1-3 modules.
[[nodiscard]] MultiVersionDspn build_multiversion_dspn(const DspnConfig& config);

/// Expected steady-state output reliability E[R_sys] (Eq. 3): solves the
/// DSPN exactly and weights each state with the Section V-B reliability of
/// its (i, j, k) configuration.
[[nodiscard]] double steady_state_reliability(const DspnConfig& config,
                                              const reliability::Params& params);

/// As above but reusing an already built model/graph (for parameter sweeps
/// that only vary the reward parameters).
[[nodiscard]] double steady_state_reliability(const MultiVersionDspn& model,
                                              const dspn::ReachabilityGraph& graph,
                                              const std::vector<double>& pi,
                                              const reliability::Params& params);

// --- Degraded-state extension (sensor faults + trust-driven policy) ---
//
// The scenario suite (av/scenario.hpp) corrupts the *input*, a fault class
// the Fig. 2/3 models cannot express: all modules stay healthy while every
// version computes on garbage. The extension composes the module-health net
// with an independent two-state sensor channel
//
//   Pso --Tsf(exp 1/sensor_mttf)--> Psf --Tsr(exp 1/sensor_repair)--> Pso
//
// and moves the input-fault handling into the *reward*: in sensor-ok states
// the system earns the usual (i, j, k) reliability; in sensor-faulted
// states an unmonitored system earns only `blind_reliability` (diverse
// versions agree on the same wrong answer — voting is defeated), while the
// trust-monitored policy earns 1.0 whenever the monitor catches the fault
// (a minimal-risk stop produces no unsafe output, Eq. 3 counts it as safe)
// and `blind_reliability` on the missed fraction.

struct DegradedDspnConfig {
    DspnConfig base;
    double sensor_mttf = 12.0;   ///< mean time between sensor faults (s)
    double sensor_repair = 8.0;  ///< mean sensor fault duration (s)
    /// Probability the trust monitor flags a faulted-sensor state in time
    /// (the policy ladder then suppresses decided outputs).
    double detection = 0.95;
    /// Output reliability while computing on an undetected bad input.
    double blind_reliability = 0.0;
};

/// The composed net plus the sensor-channel place handles.
struct DegradedDspn {
    MultiVersionDspn base;
    dspn::PlaceId pso{};  ///< sensor ok
    dspn::PlaceId psf{};  ///< sensor faulted

    [[nodiscard]] bool sensor_faulted(const dspn::Marking& m) const {
        return dspn::tokens(m, psf) > 0;
    }
};

/// Build the module-health DSPN composed with the sensor channel.
[[nodiscard]] DegradedDspn build_degraded_dspn(const DegradedDspnConfig& config);

/// Steady-state E[R_sys] of the composed model, with (`policy` = true) or
/// without the trust-driven degraded-mode policy. For any detection > 0 the
/// policy value dominates the no-policy value — the analytic counterpart of
/// the benchmark's per-scenario-class gate.
[[nodiscard]] double degraded_steady_state_reliability(
    const DegradedDspnConfig& config, const reliability::Params& params,
    bool policy);

}  // namespace mvreju::core
