#pragma once

// The trusted voter of the multi-version ML architecture (Section IV).
//
// Voting rules (paper, Section IV):
//   R.1  three operational modules: 2-out-of-3 agreement required; if no two
//        proposals agree the decision is safely skipped;
//   R.2  two operational modules: 2-out-of-2; disagreement -> safe skip;
//   R.3  one operational module: its proposal is accepted.
//
// Non-functional modules submit no proposal (std::nullopt). An `unanimity`
// scheme (3-out-of-3, as in PolygraphMR) is provided for the voting-rule
// ablation. Agreement is a configurable predicate so that approximate
// agreement (e.g. detections within a distance tolerance) plugs in directly.

#include <functional>
#include <optional>
#include <stdexcept>
#include <vector>

namespace mvreju::core {

enum class VoteKind {
    decided,    ///< enough agreeing proposals: output produced
    skipped,    ///< functional modules disagree: safely skip (R.1/R.2)
    no_output,  ///< no functional module proposed anything
};

template <typename Output>
struct VoteResult {
    VoteKind kind = VoteKind::no_output;
    std::optional<Output> value;  ///< set iff kind == decided
    int agreeing = 0;             ///< proposals supporting the decision (0 unless decided)

    [[nodiscard]] bool decided() const noexcept { return kind == VoteKind::decided; }
};

enum class VotingScheme {
    majority,         ///< rules R.1-R.3: two agreeing proposals suffice
    strict_majority,  ///< more than half of the functional proposals must agree
    unanimity,        ///< all functional proposals must agree (skip otherwise)
};

/// Trusted voter. `Agree` is a symmetric binary predicate over outputs.
template <typename Output, typename Agree = std::equal_to<Output>>
class Voter {
public:
    explicit Voter(VotingScheme scheme = VotingScheme::majority, Agree agree = Agree{})
        : scheme_(scheme), agree_(std::move(agree)) {}

    [[nodiscard]] VotingScheme scheme() const noexcept { return scheme_; }

    /// Decide on a frame given one optional proposal per module.
    [[nodiscard]] VoteResult<Output> vote(
        const std::vector<std::optional<Output>>& proposals) const {
        std::vector<const Output*> active;
        active.reserve(proposals.size());
        for (const auto& proposal : proposals)
            if (proposal.has_value()) active.push_back(&*proposal);

        VoteResult<Output> result;
        if (active.empty()) {
            result.kind = VoteKind::no_output;
            return result;
        }
        if (active.size() == 1) {  // R.3
            result.kind = VoteKind::decided;
            result.value = *active.front();
            result.agreeing = 1;
            return result;
        }

        if (scheme_ == VotingScheme::unanimity) {
            for (std::size_t i = 1; i < active.size(); ++i) {
                if (!agree_(*active[0], *active[i])) {
                    result.kind = VoteKind::skipped;
                    return result;
                }
            }
            result.kind = VoteKind::decided;
            result.value = *active.front();
            result.agreeing = static_cast<int>(active.size());
            return result;
        }

        // Paper majority (R.1/R.2): two agreeing proposals suffice.
        // Strict majority (the natural rule for N > 3 versions): more than
        // half of the functional proposals must agree.
        const std::size_t needed = scheme_ == VotingScheme::strict_majority
                                       ? active.size() / 2 + 1
                                       : 2;
        for (std::size_t i = 0; i < active.size(); ++i) {
            std::size_t supporters = 1;
            for (std::size_t j = 0; j < active.size(); ++j)
                if (j != i && agree_(*active[i], *active[j])) ++supporters;
            if (supporters >= needed) {
                result.kind = VoteKind::decided;
                result.value = *active[i];
                result.agreeing = static_cast<int>(supporters);
                return result;
            }
        }
        result.kind = VoteKind::skipped;  // R.1/R.2 divergence
        return result;
    }

private:
    VotingScheme scheme_;
    Agree agree_;
};

/// Per-module dissent flags for a decided vote: true when the module posted
/// a proposal that does NOT agree with the decided value. Non-posting
/// modules and agreeing modules are false; every module is false when the
/// vote was not decided (with no majority there is nothing to dissent from).
/// The degraded-mode controller feeds these into its per-version dissent
/// EWMA to pick which version to drop.
template <typename Output, typename Agree>
[[nodiscard]] std::vector<bool> dissenting_proposals(
    const std::vector<std::optional<Output>>& proposals,
    const VoteResult<Output>& result, const Agree& agree) {
    std::vector<bool> dissented(proposals.size(), false);
    if (result.kind != VoteKind::decided || !result.value.has_value())
        return dissented;
    for (std::size_t m = 0; m < proposals.size(); ++m)
        if (proposals[m].has_value() && !agree(*proposals[m], *result.value))
            dissented[m] = true;
    return dissented;
}

}  // namespace mvreju::core
