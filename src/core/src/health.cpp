#include "mvreju/core/health.hpp"

#include <limits>
#include <stdexcept>

namespace mvreju::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

HealthEngine::HealthEngine(const HealthEngineConfig& config)
    : config_(config),
      rng_(config.seed),
      states_(static_cast<std::size_t>(config.modules), ModuleState::healthy),
      next_compromise_(kInf),
      next_failure_(kInf),
      reactive_done_(kInf),
      proactive_done_(kInf),
      next_trigger_(config.proactive ? config.timing.rejuvenation_interval : kInf) {
    if (config.modules < 1) throw std::invalid_argument("HealthEngine: modules < 1");
    const auto& t = config.timing;
    if (t.mttc <= 0 || t.mttf <= 0 || t.reactive_duration <= 0 ||
        t.proactive_duration <= 0 || t.rejuvenation_interval <= 0)
        throw std::invalid_argument("HealthEngine: non-positive timing parameter");
    resample_compromise();
}

int HealthEngine::module_count() const noexcept {
    return static_cast<int>(states_.size());
}

ModuleState HealthEngine::state(int module) const {
    return states_.at(static_cast<std::size_t>(module));
}

bool HealthEngine::functional(int module) const { return is_functional(state(module)); }

HealthEngine::Counts HealthEngine::counts() const {
    Counts c;
    for (ModuleState s : states_) {
        switch (s) {
            case ModuleState::healthy: ++c.healthy; break;
            case ModuleState::compromised: ++c.compromised; break;
            default: ++c.nonfunctional; break;
        }
    }
    return c;
}

void HealthEngine::resample_compromise() {
    next_compromise_ = counts().healthy > 0
                           ? now_ + rng_.exponential(1.0 / config_.timing.mttc)
                           : kInf;
}

void HealthEngine::resample_failure() {
    next_failure_ = counts().compromised > 0
                        ? now_ + rng_.exponential(1.0 / config_.timing.mttf)
                        : kInf;
}

int HealthEngine::pick_among(ModuleState wanted) {
    std::vector<int> eligible;
    for (int m = 0; m < module_count(); ++m)
        if (states_[static_cast<std::size_t>(m)] == wanted) eligible.push_back(m);
    if (eligible.empty()) return -1;
    return eligible[rng_.uniform_int(eligible.size())];
}

int HealthEngine::pick_victim() {
    const Counts c = counts();
    const int functional_count = c.healthy + c.compromised;
    if (functional_count == 0) return -1;
    double p_compromised = 0.0;
    switch (config_.policy) {
        case VictimPolicy::weighted_table1:
            p_compromised =
                static_cast<double>(c.compromised) / static_cast<double>(functional_count);
            break;
        case VictimPolicy::two_thirds_compromised:
            p_compromised = c.compromised > 0 ? 2.0 / 3.0 : 0.0;
            if (c.healthy == 0) p_compromised = 1.0;
            break;
        case VictimPolicy::compromised_first:
            p_compromised = c.compromised > 0 ? 1.0 : 0.0;
            break;
        case VictimPolicy::uniform:
            p_compromised =
                static_cast<double>(c.compromised) / static_cast<double>(functional_count);
            break;
    }
    const bool take_compromised =
        c.compromised > 0 && (c.healthy == 0 || rng_.bernoulli(p_compromised));
    const int victim =
        pick_among(take_compromised ? ModuleState::compromised : ModuleState::healthy);
    return victim >= 0 ? victim
                       : pick_among(take_compromised ? ModuleState::healthy
                                                     : ModuleState::compromised);
}

void HealthEngine::start_reactive_if_possible(double at) {
    if (reactive_active_ >= 0) return;
    const int module = pick_among(ModuleState::nonfunctional);
    if (module < 0) return;
    reactive_active_ = module;
    reactive_done_ = at + rng_.exponential(1.0 / config_.timing.reactive_duration);
}

void HealthEngine::try_start_proactive(double at) {
    if (!action_latched_) return;
    // Guard g2 of the DSPN: no non-functional and no proactive repair running.
    const Counts c = counts();
    if (c.nonfunctional > 0 || proactive_active_ >= 0) return;
    const int victim = pick_victim();
    if (victim < 0) return;  // nothing functional to rejuvenate
    action_latched_ = false;
    states_[static_cast<std::size_t>(victim)] = ModuleState::rejuvenating_proactive;
    proactive_active_ = victim;
    proactive_done_ = at + rng_.exponential(1.0 / config_.timing.proactive_duration);
    resample_compromise();
    resample_failure();
}

double HealthEngine::next_event_time() const {
    double t = next_compromise_;
    t = std::min(t, next_failure_);
    t = std::min(t, reactive_done_);
    t = std::min(t, proactive_done_);
    t = std::min(t, next_trigger_);
    return t;
}

void HealthEngine::process_next_event() {
    const double t = next_event_time();
    now_ = t;

    if (t == next_trigger_) {
        // Proactive clock fires; the clock always restarts immediately.
        next_trigger_ = t + config_.timing.rejuvenation_interval;
        ++stats_.proactive_triggers;
        // The Tac latch refuses a trigger while one is pending or a
        // proactive repair is running (tokens would pile up otherwise).
        if (action_latched_ || proactive_active_ >= 0) {
            ++stats_.deferred_triggers;
            return;
        }
        action_latched_ = true;
        if (counts().nonfunctional > 0) ++stats_.deferred_triggers;
        try_start_proactive(t);
        return;
    }

    if (t == reactive_done_) {
        states_[static_cast<std::size_t>(reactive_active_)] = ModuleState::healthy;
        reactive_active_ = -1;
        reactive_done_ = kInf;
        ++stats_.reactive_rejuvenations;
        last_rejuvenation_time_ = t;
        resample_compromise();
        start_reactive_if_possible(t);
        try_start_proactive(t);
        return;
    }

    if (t == proactive_done_) {
        states_[static_cast<std::size_t>(proactive_active_)] = ModuleState::healthy;
        proactive_active_ = -1;
        proactive_done_ = kInf;
        ++stats_.proactive_rejuvenations;
        last_rejuvenation_time_ = t;
        resample_compromise();
        return;
    }

    if (t == next_compromise_) {
        const int module = pick_among(ModuleState::healthy);
        states_[static_cast<std::size_t>(module)] = ModuleState::compromised;
        ++stats_.compromises;
        resample_compromise();
        resample_failure();
        return;
    }

    // Failure of a compromised module.
    const int module = pick_among(ModuleState::compromised);
    states_[static_cast<std::size_t>(module)] = ModuleState::nonfunctional;
    ++stats_.failures;
    resample_compromise();
    resample_failure();
    start_reactive_if_possible(t);
}

void HealthEngine::advance_to(double t) {
    if (t < now_) throw std::invalid_argument("HealthEngine::advance_to: time reversal");
    while (next_event_time() <= t) process_next_event();
    now_ = t;
}

void HealthEngine::force_compromise(int module) {
    if (state(module) != ModuleState::healthy)
        throw std::logic_error("force_compromise: module not healthy");
    states_[static_cast<std::size_t>(module)] = ModuleState::compromised;
    ++stats_.compromises;
    resample_compromise();
    resample_failure();
}

void HealthEngine::force_failure(int module) {
    if (!is_functional(state(module)))
        throw std::logic_error("force_failure: module not functional");
    states_[static_cast<std::size_t>(module)] = ModuleState::nonfunctional;
    ++stats_.failures;
    resample_compromise();
    resample_failure();
    start_reactive_if_possible(now_);
}

}  // namespace mvreju::core
