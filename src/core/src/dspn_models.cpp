#include "mvreju/core/dspn_models.hpp"

#include <stdexcept>

#include "mvreju/dspn/solver.hpp"

namespace mvreju::core {

using dspn::Marking;
using dspn::PetriNet;
using dspn::tokens;

MultiVersionDspn build_multiversion_dspn(const DspnConfig& config) {
    if (config.modules < 1 || config.modules > 3)
        throw std::invalid_argument("build_multiversion_dspn: modules must be 1..3");
    const auto& t = config.timing;
    if (t.mttc <= 0 || t.mttf <= 0 || t.reactive_duration <= 0 ||
        t.proactive_duration <= 0 || t.rejuvenation_interval <= 0)
        throw std::invalid_argument("build_multiversion_dspn: non-positive timing");

    MultiVersionDspn model;
    model.proactive = config.proactive;
    model.modules = config.modules;
    PetriNet& net = model.net;

    model.pmh = net.add_place("Pmh", config.modules);
    model.pmc = net.add_place("Pmc");
    model.pmf = net.add_place("Pmf");

    const double lambda_c = 1.0 / t.mttc;
    const double lambda = 1.0 / t.mttf;
    const double mu = 1.0 / t.reactive_duration;

    // Tc: healthy -> compromised (attack / degradation).
    const auto pmh = model.pmh;
    const auto pmc = model.pmc;
    const auto pmf = model.pmf;
    auto tc = (config.compromise_semantics == ServerSemantics::infinite)
                  ? net.add_exponential("Tc", [pmh, lambda_c](const Marking& m) {
                        return lambda_c * tokens(m, pmh);
                    })
                  : net.add_exponential("Tc", lambda_c);
    net.add_input_arc(tc, model.pmh);
    net.add_output_arc(tc, model.pmc);

    // Tf: compromised -> non-functional (crash / detected corruption).
    auto tf = (config.failure_semantics == ServerSemantics::infinite)
                  ? net.add_exponential("Tf", [pmc, lambda](const Marking& m) {
                        return lambda * tokens(m, pmc);
                    })
                  : net.add_exponential("Tf", lambda);
    net.add_input_arc(tf, model.pmc);
    net.add_output_arc(tf, model.pmf);

    // Tr: reactive rejuvenation, one module at a time (single server).
    auto tr = net.add_exponential("Tr", mu);
    net.add_input_arc(tr, model.pmf);
    net.add_output_arc(tr, model.pmh);

    if (!config.proactive) return model;

    // --- Fig. 3 proactive time-triggered rejuvenation ---
    model.pmr = net.add_place("Pmr");
    model.prc = net.add_place("Prc", 1);
    model.ptr = net.add_place("Ptr");
    model.pac = net.add_place("Pac");
    const auto pmr = model.pmr;
    const auto ptr = model.ptr;
    const auto pac = model.pac;

    // Trc: the rejuvenation clock, fires every 1/gamma.
    model.trc = net.add_deterministic("Trc", t.rejuvenation_interval);
    net.add_input_arc(model.trc, model.prc);
    net.add_output_arc(model.trc, model.ptr);

    // Tac: latch the trigger into Pac (guard g1 plus no-pending-action terms
    // that keep immediate firing finite; see DESIGN.md section 4).
    auto tac = net.add_immediate("Tac", 1.0, /*priority=*/2);
    net.set_guard(tac, [ptr, pac, pmr](const Marking& m) {
        return tokens(m, ptr) >= 1 && tokens(m, pac) == 0 && tokens(m, pmr) == 0;
    });
    net.add_output_arc(tac, model.pac);

    // Trt: restart the clock once an action is pending or running (g3).
    auto trt = net.add_immediate("Trt", 1.0, /*priority=*/1);
    net.set_guard(trt, [pac, pmr](const Marking& m) {
        return tokens(m, pac) + tokens(m, pmr) > 0;
    });
    net.add_input_arc(trt, model.ptr);
    net.add_output_arc(trt, model.prc);

    // Victim selection: Trj1 takes a compromised module, Trj2 a healthy one,
    // with the Table I weights. Guard g2 defers to reactive rejuvenation.
    auto g2 = [pmf, pmr](const Marking& m) {
        return tokens(m, pmf) + tokens(m, pmr) < 1;
    };
    dspn::MarkingFn w1;
    dspn::MarkingFn w2;
    switch (config.victim_weights) {
        case VictimWeights::table1:
            // Table I: pick a compromised module with probability #C/(#C+#H)
            // -- i.e. uniformly over the functional modules.
            w1 = [pmh, pmc](const Marking& m) {
                const int c = tokens(m, pmc);
                const int h = tokens(m, pmh);
                return c == 0 ? 0.00001
                              : static_cast<double>(c) / static_cast<double>(c + h);
            };
            w2 = [pmh, pmc](const Marking& m) {
                const int c = tokens(m, pmc);
                const int h = tokens(m, pmh);
                return h == 0 ? 0.00001
                              : static_cast<double>(h) / static_cast<double>(c + h);
            };
            break;
        case VictimWeights::two_thirds:
            w1 = [pmc](const Marking& m) {
                return tokens(m, pmc) == 0 ? 0.00001 : 2.0 / 3.0;
            };
            w2 = [pmh](const Marking& m) {
                return tokens(m, pmh) == 0 ? 0.00001 : 1.0 / 3.0;
            };
            break;
        case VictimWeights::healthy_only:
            w1 = [](const Marking&) { return 0.00001; };
            w2 = [pmh](const Marking& m) {
                return tokens(m, pmh) == 0 ? 0.00001 : 1.0;
            };
            break;
    }

    auto trj1 = net.add_immediate("Trj1", dspn::MarkingFn(w1), /*priority=*/1);
    net.set_guard(trj1, g2);
    net.add_input_arc(trj1, model.pac);
    net.add_input_arc(trj1, model.pmc);
    net.add_output_arc(trj1, model.pmr);

    auto trj2 = net.add_immediate("Trj2", dspn::MarkingFn(w2), /*priority=*/1);
    net.set_guard(trj2, g2);
    net.add_input_arc(trj2, model.pac);
    net.add_input_arc(trj2, model.pmh);
    net.add_output_arc(trj2, model.pmr);

    // Trj: the proactive rejuvenation itself.
    auto trj = net.add_exponential("Trj", 1.0 / t.proactive_duration);
    net.add_input_arc(trj, model.pmr);
    net.add_output_arc(trj, model.pmh);

    return model;
}

double steady_state_reliability(const MultiVersionDspn& model,
                                const dspn::ReachabilityGraph& graph,
                                const std::vector<double>& pi,
                                const reliability::Params& params) {
    return dspn::expected_reward(graph, pi, [&](const Marking& m) {
        return reliability::state_reliability(model.healthy(m), model.compromised(m),
                                              model.nonfunctional(m), params);
    });
}

double steady_state_reliability(const DspnConfig& config,
                                const reliability::Params& params) {
    const MultiVersionDspn model = build_multiversion_dspn(config);
    const dspn::ReachabilityGraph graph(model.net);
    const std::vector<double> pi = dspn::dspn_steady_state(graph);
    return steady_state_reliability(model, graph, pi, params);
}

DegradedDspn build_degraded_dspn(const DegradedDspnConfig& config) {
    if (config.sensor_mttf <= 0 || config.sensor_repair <= 0)
        throw std::invalid_argument("build_degraded_dspn: non-positive sensor timing");
    if (config.detection < 0 || config.detection > 1)
        throw std::invalid_argument("build_degraded_dspn: detection not in [0, 1]");

    DegradedDspn model;
    model.base = build_multiversion_dspn(config.base);
    PetriNet& net = model.base.net;

    // Independent two-state sensor channel alongside the module-health net.
    model.pso = net.add_place("Pso", 1);
    model.psf = net.add_place("Psf");

    auto tsf = net.add_exponential("Tsf", 1.0 / config.sensor_mttf);
    net.add_input_arc(tsf, model.pso);
    net.add_output_arc(tsf, model.psf);

    auto tsr = net.add_exponential("Tsr", 1.0 / config.sensor_repair);
    net.add_input_arc(tsr, model.psf);
    net.add_output_arc(tsr, model.pso);

    return model;
}

double degraded_steady_state_reliability(const DegradedDspnConfig& config,
                                         const reliability::Params& params,
                                         bool policy) {
    const DegradedDspn model = build_degraded_dspn(config);
    const dspn::ReachabilityGraph graph(model.base.net);
    const std::vector<double> pi = dspn::dspn_steady_state(graph);
    return dspn::expected_reward(graph, pi, [&](const Marking& m) {
        if (model.sensor_faulted(m)) {
            // Input fault: every functional version computes on the same
            // bad frame, so module diversity earns nothing. With the policy
            // the detected fraction yields a minimal-risk stop (no unsafe
            // output => safe under Eq. 3); missed faults stay blind.
            return policy ? config.detection +
                                (1.0 - config.detection) * config.blind_reliability
                          : config.blind_reliability;
        }
        return reliability::state_reliability(model.base.healthy(m),
                                              model.base.compromised(m),
                                              model.base.nonfunctional(m), params);
    });
}

}  // namespace mvreju::core
