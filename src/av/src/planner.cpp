#include "mvreju/av/planner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mvreju/av/sensor.hpp"

namespace mvreju::av {

Planner::Planner(PlannerConfig config) : config_(config) {
    if (config.max_accel <= 0 || config.max_brake <= 0 || config.comfort_brake <= 0 ||
        config.time_gap <= 0)
        throw std::invalid_argument("Planner: non-positive dynamics parameter");
}

void Planner::update_perception(std::optional<int> bucket) {
    if (bucket.has_value()) {
        if (*bucket < 0 || *bucket >= kDistanceBuckets)
            throw std::out_of_range("Planner: bad bucket");
        perceived_bucket_ = *bucket;
        consecutive_skips_ = 0;
    } else {
        // Skipped frame: hold the previous value, count towards staleness.
        ++consecutive_skips_;
    }
}

double Planner::target_speed(double route_limit) const {
    if (perceived_bucket_ == 0) return route_limit;
    const double distance = bucket_to_distance(perceived_bucket_);
    const double margin = distance - config_.safe_gap;
    if (margin <= 0.0) return 0.0;
    // Two constraints: time-gap headway and comfortable stopping distance.
    const double headway_speed = margin / config_.time_gap;
    const double stopping_speed = std::sqrt(2.0 * config_.comfort_brake * margin);
    return std::min({route_limit, headway_speed, stopping_speed});
}

double Planner::accel_command(double current_speed, double route_limit) const {
    if (consecutive_skips_ > 0) {
        // Perception skipped: driving properties unchanged (held command);
        // past the skip threshold the hold may no longer accelerate, and
        // after prolonged silence the vehicle brakes gently.
        if (config_.stale_threshold > 0 && consecutive_skips_ >= config_.stale_threshold)
            return current_speed > 0.0 ? -config_.stale_brake : 0.0;
        return perception_stale() ? std::min(held_accel_, 0.0) : held_accel_;
    }
    const double error = target_speed(route_limit) - current_speed;
    const double gain = error >= 0.0 ? config_.speed_kp : config_.brake_kp;
    held_accel_ = std::clamp(gain * error, -config_.max_brake, config_.max_accel);
    return held_accel_;
}

double curvature_limited_speed(const Route& route, double s,
                               const PlannerConfig& config) {
    double limit = route.speed_limit();
    for (double d = 0.0; d <= config.curve_preview; d += 4.0) {
        const double kappa = route.curvature_at(std::min(s + d, route.length()));
        if (kappa > 1e-4)
            limit = std::min(limit, std::sqrt(config.lat_accel_max / kappa));
    }
    return limit;
}

double pure_pursuit_steer(Vec2 position, double heading, double speed,
                          const Route& route, double& s_hint,
                          const PlannerConfig& config) {
    s_hint = route.project(position, s_hint);
    const double lookahead = config.lookahead_base + config.lookahead_gain * speed;
    const Vec2 target = route.point_at(std::min(s_hint + lookahead, route.length()));
    const Obb frame{position, 2.25, 0.95, heading};
    const Vec2 local = to_local(frame, target);
    const double dist = std::max(local.norm(), 1e-6);
    const double alpha = std::atan2(local.y, local.x);
    // Classic pure pursuit with wheelbase 2.8 (matching EgoVehicle default).
    const double steer = std::atan2(2.0 * 2.8 * std::sin(alpha), dist);
    return std::clamp(steer, -config.max_steer, config.max_steer);
}

double pure_pursuit_steer(const EgoVehicle& ego, const Route& route, double& s_hint,
                          const PlannerConfig& config) {
    return pure_pursuit_steer(ego.position(), ego.heading(), ego.speed(), route, s_hint,
                              config);
}

}  // namespace mvreju::av
