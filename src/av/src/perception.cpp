#include "mvreju/av/perception.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "mvreju/fi/inject.hpp"

namespace mvreju::av {

namespace {
constexpr std::size_t kChannels = 2;
}

ml::Sequential make_detector_n(const SensorConfig& config, std::uint64_t seed) {
    util::Rng rng(seed);
    const std::size_t side = config.grid;
    const std::size_t s1 = side / 2;
    ml::Sequential model("DetectorN");
    model.add(std::make_unique<ml::Conv2D>(kChannels, 5, 3, 1, rng))
        .add(std::make_unique<ml::ReLU>())
        .add(std::make_unique<ml::MaxPool2D>())
        .add(std::make_unique<ml::Flatten>())
        .add(std::make_unique<ml::Dense>(5 * s1 * s1, 24, rng))
        .add(std::make_unique<ml::ReLU>())
        .add(std::make_unique<ml::Dense>(24, kDistanceBuckets, rng));
    return model;
}

ml::Sequential make_detector_x(const SensorConfig& config, std::uint64_t seed) {
    util::Rng rng(seed);
    const std::size_t side = config.grid;
    const std::size_t s1 = side / 2;
    ml::Sequential model("DetectorX");
    model.add(std::make_unique<ml::Conv2D>(kChannels, 10, 3, 1, rng))
        .add(std::make_unique<ml::ReLU>())
        .add(std::make_unique<ml::Conv2D>(10, 10, 3, 1, rng))
        .add(std::make_unique<ml::ReLU>())
        .add(std::make_unique<ml::MaxPool2D>())
        .add(std::make_unique<ml::ResidualBlock>(10, 3, rng))
        .add(std::make_unique<ml::Flatten>())
        .add(std::make_unique<ml::Dense>(10 * s1 * s1, 56, rng))
        .add(std::make_unique<ml::ReLU>())
        .add(std::make_unique<ml::Dense>(56, kDistanceBuckets, rng));
    return model;
}

ml::Sequential make_detector_s(const SensorConfig& config, std::uint64_t seed) {
    util::Rng rng(seed);
    const std::size_t side = config.grid;
    const std::size_t s2 = side / 2 / 2;
    ml::Sequential model("DetectorS");
    model.add(std::make_unique<ml::Conv2D>(kChannels, 6, 3, 1, rng))
        .add(std::make_unique<ml::ReLU>())
        .add(std::make_unique<ml::MaxPool2D>())
        .add(std::make_unique<ml::Conv2D>(6, 12, 3, 1, rng))
        .add(std::make_unique<ml::ReLU>())
        .add(std::make_unique<ml::MaxPool2D>())
        .add(std::make_unique<ml::Flatten>())
        .add(std::make_unique<ml::Dense>(12 * s2 * s2, 32, rng))
        .add(std::make_unique<ml::ReLU>())
        .add(std::make_unique<ml::Dense>(32, kDistanceBuckets, rng));
    return model;
}

ml::Sequential make_detector_m(const SensorConfig& config, std::uint64_t seed) {
    util::Rng rng(seed);
    const std::size_t side = config.grid;
    const std::size_t s1 = side / 2;
    ml::Sequential model("DetectorM");
    model.add(std::make_unique<ml::Conv2D>(kChannels, 8, 3, 1, rng))
        .add(std::make_unique<ml::ReLU>())
        .add(std::make_unique<ml::Conv2D>(8, 8, 3, 1, rng))
        .add(std::make_unique<ml::ReLU>())
        .add(std::make_unique<ml::MaxPool2D>())
        .add(std::make_unique<ml::Flatten>())
        .add(std::make_unique<ml::Dense>(8 * s1 * s1, 48, rng))
        .add(std::make_unique<ml::ReLU>())
        .add(std::make_unique<ml::Dense>(48, kDistanceBuckets, rng));
    return model;
}

ml::Sequential make_detector_l(const SensorConfig& config, std::uint64_t seed) {
    util::Rng rng(seed);
    const std::size_t side = config.grid;
    const std::size_t s1 = side / 2;
    ml::Sequential model("DetectorL");
    model.add(std::make_unique<ml::Conv2D>(kChannels, 8, 3, 1, rng))
        .add(std::make_unique<ml::ReLU>())
        .add(std::make_unique<ml::MaxPool2D>())
        .add(std::make_unique<ml::ResidualBlock>(8, 3, rng))
        .add(std::make_unique<ml::Flatten>())
        .add(std::make_unique<ml::Dense>(8 * s1 * s1, 40, rng))
        .add(std::make_unique<ml::ReLU>())
        .add(std::make_unique<ml::Dense>(40, kDistanceBuckets, rng));
    return model;
}

Detection detect(const ml::Sequential& model, const ml::Tensor& grid) {
    return {model.predict(grid)};
}

DetectorSet prepare_detectors(const SensorConfig& config,
                              const DetectorTrainOptions& options) {
    namespace fs = std::filesystem;
    if (options.versions < 1 || options.versions > 5)
        throw std::invalid_argument("prepare_detectors: versions must be 1..5");
    DetectorSet set;
    set.healthy.push_back(make_detector_s(config, options.seed));
    if (options.versions >= 2) set.healthy.push_back(make_detector_m(config, options.seed + 1));
    if (options.versions >= 3) set.healthy.push_back(make_detector_l(config, options.seed + 2));
    if (options.versions >= 4) set.healthy.push_back(make_detector_n(config, options.seed + 3));
    if (options.versions >= 5) set.healthy.push_back(make_detector_x(config, options.seed + 4));

    const ml::Dataset eval_set =
        make_detector_dataset(options.eval_samples, config, options.seed + 101);

    ml::Dataset train_set;  // built lazily only if some model needs training
    for (auto& model : set.healthy) {
        fs::path cache_file;
        if (!options.cache_dir.empty()) {
            fs::create_directories(options.cache_dir);
            cache_file = options.cache_dir / (model.name() + ".params");
        }
        bool loaded = false;
        if (!cache_file.empty() && fs::exists(cache_file)) {
            model.load_parameters(cache_file);
            loaded = true;
        }
        if (!loaded) {
            if (train_set.size() == 0)
                train_set = make_detector_dataset(options.train_samples, config,
                                                  options.seed + 100);
            ml::TrainConfig tc;
            tc.epochs = options.epochs;
            tc.learning_rate = options.learning_rate;
            tc.lr_decay = options.lr_decay;
            tc.shuffle_seed = options.seed;
            model.train(train_set, tc);
            if (!cache_file.empty()) model.save_parameters(cache_file);
        }
        set.healthy_accuracy.push_back(model.evaluate(eval_set).accuracy);
    }

    // Compromised variant pools: scan injection (layer, seed) pairs per
    // version and keep optimistic variants with pairwise-distinct failure
    // signatures. Each runtime compromise event later draws one variant.
    std::vector<std::size_t> hazard_scenes;
    for (std::size_t i = 0; i < eval_set.size(); ++i)
        if (eval_set.labels[i] >= 3) hazard_scenes.push_back(i);
    std::vector<ml::Tensor> hazard_images;
    hazard_images.reserve(hazard_scenes.size());
    for (std::size_t i : hazard_scenes) hazard_images.push_back(eval_set.images[i]);

    auto hazard_predictions = [&](const ml::Sequential& model) {
        return model.predict_batch(hazard_images);
    };
    auto optimistic_rate = [&](const std::vector<int>& preds) {
        std::size_t optimistic = 0;
        for (std::size_t k = 0; k < preds.size(); ++k)
            if (preds[k] <= eval_set.labels[hazard_scenes[k]] - 2) ++optimistic;
        return hazard_scenes.empty()
                   ? 0.0
                   : static_cast<double>(optimistic) / hazard_scenes.size();
    };
    auto pairwise_agreement = [&](const std::vector<int>& a, const std::vector<int>& b) {
        std::size_t agree = 0;
        for (std::size_t k = 0; k < a.size(); ++k)
            if (std::abs(a[k] - b[k]) <= 1) ++agree;
        return a.empty() ? 0.0 : static_cast<double>(agree) / a.size();
    };

    // Each pool is filled slot-by-slot so that the failure modes span the
    // spectrum a corrupted detector exhibits: slot 0 collapses towards
    // "clear" (missed detections -- the dangerous mode), slots 1-2 collapse
    // towards mid/near buckets (pessimistic garbage), slot 3 is mixed
    // garbage with no dominant output. Two simultaneously compromised
    // modules therefore only rarely agree on "clear".
    constexpr std::size_t kSlots = 4;
    auto slot_of = [](const std::vector<int>& preds, double accuracy) -> int {
        if (preds.empty()) return -1;
        std::array<std::size_t, kDistanceBuckets> hist{};
        for (int p : preds) ++hist[static_cast<std::size_t>(p)];
        const std::size_t modal = static_cast<std::size_t>(
            std::max_element(hist.begin(), hist.end()) - hist.begin());
        const double share =
            static_cast<double>(hist[modal]) / static_cast<double>(preds.size());
        if (share < 0.6) return accuracy <= 0.6 ? 3 : -1;  // mixed garbage
        if (modal <= 1) return 0;                          // collapse to clear
        if (modal <= 3) return 1;                          // collapse to mid
        return 2;                                          // collapse to near
    };

    set.compromised.resize(set.healthy.size());
    for (std::size_t m = 0; m < set.healthy.size(); ++m) {
        const std::size_t layers = fi::injectable_layer_count(set.healthy[m]);
        std::array<bool, kSlots> filled{};
        std::size_t filled_count = 0;
        // One worker copy serves the whole scan: injections are reversible,
        // so each attempt injects, runs the batched evaluation, and restores;
        // only accepted variants get cloned (at most kSlots per version).
        ml::Sequential worker = set.healthy[m];
        for (std::uint64_t attempt = 0;
             attempt < 250 * layers && filled_count < options.variants_per_version;
             ++attempt) {
            const std::uint64_t inj_seed = options.seed * 1000 + m * 211 + attempt % 250;
            const std::size_t layer = attempt / 250;  // scan layer by layer
            const fi::Injection injection = fi::random_weight_inj(
                worker, layer, options.inject_min, options.inject_max, inj_seed);
            const double accuracy = worker.evaluate(eval_set).accuracy;
            const auto preds = hazard_predictions(worker);
            const int slot = slot_of(preds, accuracy);
            const bool accept =
                slot >= 0 && !filled[static_cast<std::size_t>(slot)] &&
                !(slot == 0 && optimistic_rate(preds) < options.min_optimistic_rate);
            if (accept) {
                CompromisedVariant variant{worker, accuracy, optimistic_rate(preds),
                                           inj_seed, layer};
                set.compromised[m].push_back(std::move(variant));
                filled[static_cast<std::size_t>(slot)] = true;
                ++filled_count;
            }
            fi::restore(worker, injection);
        }
        (void)pairwise_agreement;
        const std::size_t required = std::min<std::size_t>(2, options.variants_per_version);
        if (set.compromised[m].size() < required)
            throw std::runtime_error(
                "prepare_detectors: not enough distinct failure modes found for " +
                set.healthy[m].name());
    }
    return set;
}

}  // namespace mvreju::av
