#include "mvreju/av/localization.hpp"

#include <stdexcept>

namespace mvreju::av {

GnssFix sample_gnss(Vec2 true_position, double true_heading, const GnssConfig& config,
                    util::Rng& rng) {
    GnssFix fix;
    if (rng.bernoulli(config.dropout_probability)) return fix;  // no fix this cycle
    fix.position = {true_position.x + rng.normal(0.0, config.position_sigma),
                    true_position.y + rng.normal(0.0, config.position_sigma)};
    fix.heading = wrap_angle(true_heading + rng.normal(0.0, config.heading_sigma));
    fix.valid = true;
    return fix;
}

Localizer::Localizer(Vec2 initial_position, double initial_heading, double blend,
                     double wheelbase)
    : position_(initial_position),
      heading_(initial_heading),
      blend_(blend),
      wheelbase_(wheelbase) {
    if (blend <= 0.0 || blend > 1.0)
        throw std::invalid_argument("Localizer: blend must be in (0, 1]");
    if (wheelbase <= 0.0) throw std::invalid_argument("Localizer: wheelbase <= 0");
}

void Localizer::predict(double speed, double steer, double dt) {
    if (dt <= 0.0) throw std::invalid_argument("Localizer::predict: dt <= 0");
    heading_ = wrap_angle(heading_ + speed / wheelbase_ * std::tan(steer) * dt);
    position_ = position_ + heading_dir(heading_) * (speed * dt);
}

void Localizer::correct(const GnssFix& fix) {
    if (!fix.valid) return;
    position_ = position_ + (fix.position - position_) * blend_;
    heading_ = wrap_angle(heading_ + wrap_angle(fix.heading - heading_) * blend_);
}

}  // namespace mvreju::av
