#include "mvreju/av/simulation.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "mvreju/core/system.hpp"
#include "mvreju/fi/inject.hpp"
#include "mvreju/obs/flight_recorder.hpp"
#include "mvreju/obs/metrics.hpp"
#include "mvreju/obs/trace.hpp"

namespace {

/// Frame-loop telemetry; resolved once so the per-frame path is just
/// relaxed atomic bumps on pre-registered cells.
struct AvTelemetry {
    mvreju::obs::Counter& frames;
    mvreju::obs::Counter& inferences;
    mvreju::obs::Counter& votes_decided;
    mvreju::obs::Counter& votes_skipped;
    mvreju::obs::Counter& votes_no_output;
    mvreju::obs::Counter& collision_frames;
    mvreju::obs::Histogram& perceive_ms;
    mvreju::obs::Gauge& trust_reliability;
    mvreju::obs::Gauge& trust_status;
    mvreju::obs::Counter& trust_sensor_faults;
    mvreju::obs::Gauge& degraded_mode;
    mvreju::obs::Counter& degraded_transitions;
    mvreju::obs::Counter& degraded_stop_frames;
    mvreju::obs::Counter& degraded_dropped;
};

AvTelemetry& av_telemetry() {
    mvreju::obs::Registry& reg = mvreju::obs::metrics();
    static AvTelemetry t{
        reg.counter("av.frames"),
        reg.counter("av.inferences"),
        reg.counter("av.votes.decided"),
        reg.counter("av.votes.skipped"),
        reg.counter("av.votes.no_output"),
        reg.counter("av.collision_frames"),
        reg.histogram("av.perceive_vote.latency_ms",
                      mvreju::obs::HistogramBounds::exponential(0.01, 2.0, 16)),
        reg.gauge("av.trust.reliability"),
        reg.gauge("av.trust.status"),
        reg.counter("av.trust.sensor_faults"),
        reg.gauge("av.degraded.mode"),
        reg.counter("av.degraded.transitions"),
        reg.counter("av.degraded.stop_frames"),
        reg.counter("av.degraded.dropped_proposals")};
    return t;
}

}  // namespace

namespace mvreju::av {

RunMetrics run_scenario(const Route& route, const DetectorSet& detectors,
                        const ScenarioConfig& config) {
    if (config.versions < 1 || config.versions > 5)
        throw std::invalid_argument("run_scenario: versions must be in [1, 5]");
    if (detectors.healthy.size() < static_cast<std::size_t>(config.versions) ||
        detectors.compromised.size() < static_cast<std::size_t>(config.versions))
        throw std::invalid_argument("run_scenario: not enough detector versions");
    for (int m = 0; m < config.versions; ++m)
        if (detectors.compromised[static_cast<std::size_t>(m)].empty())
            throw std::invalid_argument("run_scenario: empty compromised variant pool");
    if (config.dt <= 0.0 || config.horizon <= config.dt)
        throw std::invalid_argument("run_scenario: bad time parameters");

    util::Rng root(config.seed);
    util::Rng sensor_rng = root.split(1);

    // Health process (Section VII-A parameters, 2/3-prioritise policy).
    core::HealthEngineConfig health_cfg;
    health_cfg.modules = config.versions;
    health_cfg.proactive = config.rejuvenation;
    health_cfg.policy = config.victim_policy;
    health_cfg.timing.mttc = config.mttc;
    health_cfg.timing.mttf = config.mttf;
    health_cfg.timing.reactive_duration = config.reactive_duration;
    health_cfg.timing.proactive_duration = config.proactive_duration;
    health_cfg.timing.rejuvenation_interval = config.rejuvenation_interval;
    health_cfg.seed = root.split(2)();
    core::HealthEngine health(health_cfg);

    // Traffic: stop-and-go lead vehicles spaced along the route.
    std::vector<NpcVehicle> npcs;
    util::Rng npc_rng = root.split(3);
    for (int i = 0; i < config.npc_count; ++i) {
        NpcProfile profile;
        profile.cruise_speed = npc_rng.uniform(6.0, 8.0);
        profile.cruise_time = npc_rng.uniform(7.0, 12.0);
        profile.stop_time = npc_rng.uniform(2.0, 3.5);
        const double s0 = 40.0 + 55.0 * i + npc_rng.uniform(-5.0, 5.0);
        npcs.emplace_back(route, std::min(s0, route.length() - 10.0), profile,
                          npc_rng());
    }

    // Active corrupted variant per module; re-drawn on each compromise event
    // (PyTorchFI runtime perturbation: every attack corrupts differently).
    util::Rng variant_rng = root.split(4);
    std::vector<std::size_t> active_variant(static_cast<std::size_t>(config.versions), 0);
    std::vector<core::ModuleState> previous_state(
        static_cast<std::size_t>(config.versions), core::ModuleState::healthy);

    EgoVehicle ego(route.point_at(0.0), route.heading_at(0.0));
    Localizer localizer(ego.position(), ego.heading());
    util::Rng gnss_rng = root.split(5);
    double next_gnss = 0.0;
    Planner planner(config.planner);
    core::Voter<Detection, DetectionNear> voter(config.voting);
    double s_hint = 0.0;

    // Scenario replay and the degraded-mode machinery (ROADMAP item 3). The
    // player's impulse stream derives from the run seed, so a (scenario,
    // seed) pair replays bit-identically at any thread count — each run owns
    // its player and never shares RNG state.
    std::optional<ScenarioPlayer> player;
    if (config.scenario != nullptr)
        player.emplace(*config.scenario, root.split(6)());
    TrustMonitor trust(config.trust);
    DegradedModeController degraded(config.versions, config.policy);
    // Healthy weights corrupted by scenario `inject` events (lazily deep-
    // copied); reset when the module completes rejuvenation, which models
    // reloading pristine weights from safe storage.
    std::vector<std::optional<ml::Sequential>> injected(
        static_cast<std::size_t>(config.versions));
    double trust_sum = 0.0;

    RunMetrics metrics;
    using Clock = std::chrono::steady_clock;
    MVREJU_OBS_SPAN(scenario_span, "av.run_scenario");
    scenario_span.arg("versions", static_cast<double>(config.versions));
    AvTelemetry& tel = av_telemetry();

    const int max_frames = static_cast<int>(config.horizon / config.dt);
    for (int frame = 0; frame < max_frames; ++frame) {
        MVREJU_OBS_SPAN(frame_span, "av.frame");
        frame_span.arg("frame", static_cast<double>(frame));
        const double now = frame * config.dt;
        health.advance_to(now);
        // Flight-recorder events are stamped with the simulated clock so
        // dumps from seeded runs replay deterministically.
        const auto t_ns = static_cast<std::uint64_t>(now * 1e9);
        const auto frame_id = static_cast<std::uint64_t>(frame);

        // --- Sense ---
        std::vector<Obb> vehicle_boxes;
        vehicle_boxes.reserve(npcs.size());
        for (const NpcVehicle& npc : npcs) vehicle_boxes.push_back(npc.obb());
        ml::Tensor grid =
            render_grid(ego.obb(), vehicle_boxes, config.sensor, sensor_rng);
        if (player) {
            grid = player->apply(grid, now);
            for (const WeightFault& fault : player->due_weight_faults(now)) {
                if (fault.module < 0 || fault.module >= config.versions) continue;
                const auto mu = static_cast<std::size_t>(fault.module);
                switch (fault.kind) {
                    case WeightFaultKind::compromise:
                        // The stochastic health process may have beaten the
                        // script to it; an already-degraded module stays put.
                        if (health.state(fault.module) == core::ModuleState::healthy)
                            health.force_compromise(fault.module);
                        break;
                    case WeightFaultKind::fail:
                        if (core::is_functional(health.state(fault.module)))
                            health.force_failure(fault.module);
                        break;
                    case WeightFaultKind::inject: {
                        if (!injected[mu]) injected[mu] = detectors.healthy[mu];
                        const std::size_t layers =
                            fi::injectable_layer_count(*injected[mu]);
                        // Detector corruption range of Section VII-A.
                        fi::random_weight_inj(*injected[mu],
                                              fault.layer % layers, -100.0f,
                                              300.0f, fault.seed);
                        break;
                    }
                }
            }
        }

        // --- Input trust and policy ladder ---
        DegradedMode mode = DegradedMode::normal;
        if (config.trust_policy) {
            const SensorStatus status = trust.update(grid, config.dt);
            tel.trust_reliability.set(trust.reliability());
            tel.trust_status.set(static_cast<double>(status));
            if (status != SensorStatus::ok) {
                ++metrics.sensor_fault_frames;
                tel.trust_sensor_faults.add();
                MVREJU_OBS_EVENT_AT(t_ns, obs::EventKind::sensor_fault, frame_id,
                                    0, static_cast<double>(status),
                                    trust.reliability());
            }
            const DegradedMode before = degraded.mode();
            mode = degraded.update(trust.reliability());
            tel.degraded_mode.set(static_cast<double>(mode));
            if (mode != before) {
                tel.degraded_transitions.add();
                MVREJU_OBS_EVENT_AT(t_ns, obs::EventKind::degraded_mode, frame_id,
                                    0, static_cast<double>(mode),
                                    static_cast<double>(before));
            }
        }

        if (mode == DegradedMode::minimal_risk_stop) {
            // Minimal-risk manoeuvre: perception cannot be trusted at all,
            // so do not act on it — command the planner as if a hazard were
            // imminent and brake to a stop. No decided output this frame.
            ++metrics.stop_frames;
            tel.degraded_stop_frames.add();
            planner.update_perception(kDistanceBuckets - 1);
        } else {
            // --- Perceive (N versions) and vote ---
            MVREJU_OBS_SPAN(perceive_span, "av.perceive_vote");
            const auto t0 = Clock::now();
            const ml::Tensor* input = &grid;
            ml::Tensor pooled;
            if (mode == DegradedMode::reduced_resolution) {
                // Trade detail for robustness: mean pooling suppresses the
                // impulse noise that corrupts individual cells.
                pooled = reduced_resolution(grid);
                input = &pooled;
                ++metrics.reduced_frames;
            }
            std::vector<std::optional<Detection>> proposals;
            proposals.reserve(static_cast<std::size_t>(config.versions));
            for (int m = 0; m < config.versions; ++m) {
                const auto mu = static_cast<std::size_t>(m);
                const core::ModuleState state = health.state(m);
                if (state == core::ModuleState::compromised &&
                    previous_state[mu] != core::ModuleState::compromised) {
                    // Fresh compromise: draw which corruption this attack causes.
                    active_variant[mu] =
                        variant_rng.uniform_int(detectors.compromised[mu].size());
                }
                if (state == core::ModuleState::healthy &&
                    !core::is_functional(previous_state[mu]))
                    injected[mu].reset();  // rejuvenated: pristine weights
                previous_state[mu] = state;
                if (!core::is_functional(state)) {
                    proposals.emplace_back(std::nullopt);
                    continue;
                }
                if (config.trust_policy && degraded.version_dropped(m)) {
                    // Policy rung 1: a persistently dissenting version is
                    // excluded from the vote until its dissent decays.
                    proposals.emplace_back(std::nullopt);
                    ++metrics.dropped_proposals;
                    tel.degraded_dropped.add();
                    continue;
                }
                const auto& model =
                    (state == core::ModuleState::healthy)
                        ? (injected[mu] ? *injected[mu] : detectors.healthy[mu])
                        : detectors.compromised[mu][active_variant[mu]].model;
                proposals.emplace_back(detect(model, *input));
                ++metrics.inferences;
            }
            const auto vote = voter.vote(proposals);
            const double perceive_seconds =
                std::chrono::duration<double>(Clock::now() - t0).count();
            metrics.perception_wall_seconds += perceive_seconds;
            std::uint64_t frame_inferences = 0;
            for (const auto& p : proposals)
                if (p.has_value()) ++frame_inferences;
            tel.inferences.add(frame_inferences);
            tel.perceive_ms.record(perceive_seconds * 1e3);
            // SLO: the perceive+vote stage must fit inside one frame period.
            const double budget_ms = config.dt * 1e3;
            if (perceive_seconds * 1e3 > budget_ms)
                MVREJU_OBS_EVENT_AT(t_ns, obs::EventKind::slo_breach, frame_id, 0,
                                    perceive_seconds * 1e3, budget_ms);
            perceive_span.arg("versions", static_cast<double>(config.versions));
            perceive_span.arg("decided", vote.kind == core::VoteKind::decided ? 1.0 : 0.0);
            perceive_span.end();

            switch (vote.kind) {
                case core::VoteKind::decided: {
                    ++metrics.decided_frames;
                    tel.votes_decided.add();
                    const int truth_bucket = distance_to_bucket(
                        ground_truth_distance(ego.obb(), vehicle_boxes, config.sensor));
                    if (vote.value->bucket <= truth_bucket - 2)
                        ++metrics.unsafe_decided_frames;
                    MVREJU_OBS_EVENT_AT(t_ns, obs::EventKind::hazard, frame_id, 0,
                                        static_cast<double>(vote.value->bucket),
                                        static_cast<double>(truth_bucket));
                    planner.update_perception(vote.value->bucket);
                    break;
                }
                case core::VoteKind::skipped:
                    ++metrics.skipped_frames;
                    tel.votes_skipped.add();
                    // Safe-skip: the planner holds its last command this frame.
                    MVREJU_OBS_EVENT_AT(t_ns, obs::EventKind::planner_override, frame_id,
                                        0, static_cast<double>(vote.kind), 0.0);
                    planner.update_perception(std::nullopt);
                    break;
                case core::VoteKind::no_output:
                    ++metrics.no_output_frames;
                    tel.votes_no_output.add();
                    MVREJU_OBS_EVENT_AT(t_ns, obs::EventKind::planner_override, frame_id,
                                        0, static_cast<double>(vote.kind), 0.0);
                    planner.update_perception(std::nullopt);
                    break;
            }

            if (config.trust_policy) {
                // Voter outcomes feed back into trust (weight faults show up
                // as skips, not as bad frame statistics) and per-version
                // dissent drives the drop rung.
                trust.observe_vote(vote.kind == core::VoteKind::decided,
                                   config.dt);
                degraded.observe_votes(
                    core::dissenting_proposals(proposals, vote, DetectionNear{}));
            }
        }

        if (config.trust_policy) {
            trust_sum += trust.reliability();
            metrics.min_trust = std::min(metrics.min_trust, trust.reliability());
        }

        // --- Plan and act ---
        const double limit = curvature_limited_speed(route, s_hint, config.planner);
        const double accel = planner.accel_command(ego.speed(), limit);
        const double steer =
            config.use_localization
                ? pure_pursuit_steer(localizer.position(), localizer.heading(),
                                     ego.speed(), route, s_hint, config.planner)
                : pure_pursuit_steer(ego, route, s_hint, config.planner);
        ego.step(accel, steer, config.dt);
        if (config.use_localization) {
            localizer.predict(ego.speed(), steer, config.dt);
            if (now >= next_gnss) {
                localizer.correct(
                    sample_gnss(ego.position(), ego.heading(), config.gnss, gnss_rng));
                next_gnss += config.gnss_period;
            }
        }
        for (NpcVehicle& npc : npcs) npc.step(config.dt);

        // --- Collision accounting ---
        bool colliding = false;
        for (const NpcVehicle& npc : npcs) {
            if (overlaps(ego.obb(), npc.obb())) {
                colliding = true;
                // Push contact: the ego cannot move faster than the vehicle
                // it is jammed against, so contact persists until it brakes.
                if (ego.speed() > npc.speed()) ego.set_speed(npc.speed());
            }
        }
        ++metrics.total_frames;
        tel.frames.add();
        if (colliding) {
            ++metrics.collision_frames;
            tel.collision_frames.add();
            const bool first = metrics.first_collision_frame < 0;
            MVREJU_OBS_EVENT_AT(t_ns, obs::EventKind::collision, frame_id, 0,
                                ego.speed(), first ? 1.0 : 0.0);
            if (first) metrics.first_collision_frame = frame;
        }

        if (s_hint >= route.length() - 6.0) break;  // reached the destination
    }

    metrics.route_completed = s_hint / route.length();
    metrics.health_stats = health.stats();
    metrics.degraded_transitions = degraded.transitions();
    if (config.trust_policy && metrics.total_frames > 0)
        metrics.mean_trust = trust_sum / metrics.total_frames;
    scenario_span.arg("frames", static_cast<double>(metrics.total_frames));
    scenario_span.arg("route_completed", metrics.route_completed);
    return metrics;
}

}  // namespace mvreju::av
