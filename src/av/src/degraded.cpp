#include "mvreju/av/degraded.hpp"

#include <algorithm>
#include <stdexcept>

namespace mvreju::av {

const char* degraded_mode_name(DegradedMode mode) noexcept {
    switch (mode) {
        case DegradedMode::normal: return "normal";
        case DegradedMode::drop_versions: return "drop_versions";
        case DegradedMode::reduced_resolution: return "reduced_resolution";
        case DegradedMode::minimal_risk_stop: return "minimal_risk_stop";
    }
    return "unknown";
}

namespace {

DegradedMode target_mode(double reliability, const DegradedPolicyConfig& cfg) {
    if (reliability < cfg.stop_below) return DegradedMode::minimal_risk_stop;
    if (reliability < cfg.reduce_below) return DegradedMode::reduced_resolution;
    if (reliability < cfg.drop_below) return DegradedMode::drop_versions;
    return DegradedMode::normal;
}

/// Entry threshold of a rung (the level reliability must clear, plus
/// margin, to leave it).
double entry_threshold(DegradedMode mode, const DegradedPolicyConfig& cfg) {
    switch (mode) {
        case DegradedMode::minimal_risk_stop: return cfg.stop_below;
        case DegradedMode::reduced_resolution: return cfg.reduce_below;
        case DegradedMode::drop_versions: return cfg.drop_below;
        case DegradedMode::normal: return 0.0;
    }
    return 0.0;
}

}  // namespace

DegradedModeController::DegradedModeController(int versions,
                                               DegradedPolicyConfig config)
    : config_(config), dissent_(static_cast<std::size_t>(versions), 0.0) {
    if (versions < 1)
        throw std::invalid_argument("DegradedModeController: versions < 1");
}

DegradedMode DegradedModeController::update(double reliability) {
    const DegradedMode target = target_mode(reliability, config_);
    if (target > mode_) {
        // Escalate immediately, possibly several rungs at once.
        mode_ = target;
        recovery_frames_ = 0;
        ++transitions_;
        return mode_;
    }
    if (target < mode_) {
        // De-escalate one rung at a time, and only after a sustained
        // recovery above the current rung's entry threshold.
        if (reliability > entry_threshold(mode_, config_) + config_.recover_margin) {
            if (++recovery_frames_ >= config_.recover_dwell) {
                mode_ = static_cast<DegradedMode>(static_cast<int>(mode_) - 1);
                recovery_frames_ = 0;
                ++transitions_;
            }
        } else {
            recovery_frames_ = 0;
        }
    } else {
        recovery_frames_ = 0;
    }
    return mode_;
}

void DegradedModeController::observe_votes(const std::vector<bool>& dissented) {
    const std::size_t n = std::min(dissented.size(), dissent_.size());
    for (std::size_t m = 0; m < n; ++m) {
        const double sample = dissented[m] ? 1.0 : 0.0;
        dissent_[m] += config_.dissent_alpha * (sample - dissent_[m]);
    }
}

bool DegradedModeController::version_dropped(int m) const {
    if (mode_ < DegradedMode::drop_versions) return false;
    const auto mu = static_cast<std::size_t>(m);
    if (mu >= dissent_.size()) return false;
    // Never drop below a voting majority: keep at least two versions (or
    // one, in a single-version system).
    if (dissent_[mu] <= config_.dissent_drop) return false;
    std::size_t kept = 0;
    for (const double d : dissent_) kept += d <= config_.dissent_drop ? 1 : 0;
    return kept >= std::min<std::size_t>(2, dissent_.size());
}

double DegradedModeController::dissent(int m) const {
    const auto mu = static_cast<std::size_t>(m);
    return mu < dissent_.size() ? dissent_[mu] : 0.0;
}

ml::Tensor reduced_resolution(const ml::Tensor& frame) {
    if (frame.rank() != 3)
        throw std::invalid_argument("reduced_resolution: expected (C, H, W)");
    const std::size_t channels = frame.shape()[0];
    const std::size_t height = frame.shape()[1];
    const std::size_t width = frame.shape()[2];
    ml::Tensor out(frame.shape());
    for (std::size_t c = 0; c < channels; ++c) {
        for (std::size_t h = 0; h < height; h += 2) {
            for (std::size_t w = 0; w < width; w += 2) {
                const std::size_t h1 = std::min(h + 2, height);
                const std::size_t w1 = std::min(w + 2, width);
                float sum = 0.0f;
                for (std::size_t hh = h; hh < h1; ++hh)
                    for (std::size_t ww = w; ww < w1; ++ww)
                        sum += frame.at3(c, hh, ww);
                const float mean =
                    sum / static_cast<float>((h1 - h) * (w1 - w));
                for (std::size_t hh = h; hh < h1; ++hh)
                    for (std::size_t ww = w; ww < w1; ++ww)
                        out.at3(c, hh, ww) = mean;
            }
        }
    }
    return out;
}

}  // namespace mvreju::av
