#include "mvreju/av/sensor.hpp"

#include <array>
#include <limits>
#include <stdexcept>

namespace mvreju::av {

namespace {
// Distances at/above this are "clear" (bucket 0; matches the default sensor
// range). Buckets 1..7 cover [36,48), [27,36), [20,27), [14,20), [9,14),
// [5,9) and [0,5); kBucketEdges holds the lower edge of each.
constexpr double kClearDistance = 48.0;
constexpr std::array<double, 7> kBucketEdges = {36.0, 27.0, 20.0, 14.0, 9.0, 5.0, 0.0};
// Conservative (lower-edge) distance per bucket: planning against the
// nearest distance consistent with the observation tolerates the voter's
// one-bucket agreement window.
constexpr std::array<double, 8> kBucketConservative = {
    std::numeric_limits<double>::infinity(), 36.0, 27.0, 20.0, 14.0, 9.0, 5.0, 0.0};
}  // namespace

int distance_to_bucket(double distance) noexcept {
    if (distance >= kClearDistance) return 0;
    for (std::size_t k = 0; k < kBucketEdges.size(); ++k)
        if (distance >= kBucketEdges[k]) return static_cast<int>(k) + 1;
    return kDistanceBuckets - 1;  // negative distance: already overlapping
}

double bucket_to_distance(int bucket) {
    if (bucket < 0 || bucket >= kDistanceBuckets)
        throw std::out_of_range("bucket_to_distance: bad bucket");
    return kBucketConservative[static_cast<std::size_t>(bucket)];
}

ml::Tensor render_grid(const Obb& ego, std::span<const Obb> vehicles,
                       const SensorConfig& config, util::Rng& rng) {
    const std::size_t n = config.grid;
    ml::Tensor grid({2, n, n});
    const double cell_depth = config.range / static_cast<double>(n);
    const double cell_width = 2.0 * config.lateral / static_cast<double>(n);

    for (std::size_t row = 0; row < n; ++row) {
        // Row 0 is the farthest; encode a distance ramp in channel 1.
        const double ramp = 1.0 - static_cast<double>(row) / static_cast<double>(n);
        for (std::size_t col = 0; col < n; ++col)
            grid.at3(1, row, col) = static_cast<float>(ramp);
    }

    for (const Obb& vehicle : vehicles) {
        const Vec2 local = to_local(ego, vehicle.center);
        // Rasterise the vehicle footprint as a local-frame axis-aligned
        // rectangle (heading differences are small for same-lane traffic).
        const double fwd_min = local.x - vehicle.half_length;
        const double fwd_max = local.x + vehicle.half_length;
        const double lat_min = local.y - vehicle.half_width;
        const double lat_max = local.y + vehicle.half_width;
        if (fwd_max < 0.0 || fwd_min > config.range) continue;
        if (lat_max < -config.lateral || lat_min > config.lateral) continue;

        for (std::size_t row = 0; row < n; ++row) {
            const double cell_far = config.range - static_cast<double>(row) * cell_depth;
            const double cell_near = cell_far - cell_depth;
            if (fwd_max < cell_near || fwd_min > cell_far) continue;
            for (std::size_t col = 0; col < n; ++col) {
                const double cell_left = -config.lateral + static_cast<double>(col) * cell_width;
                const double cell_right = cell_left + cell_width;
                if (lat_max < cell_left || lat_min > cell_right) continue;
                grid.at3(0, row, col) = 1.0f;
            }
        }
    }

    if (config.noise_sigma > 0.0) {
        for (std::size_t i = 0; i < grid.size(); ++i) {
            float v = grid[i] + static_cast<float>(rng.normal(0.0, config.noise_sigma));
            grid[i] = v < 0.0f ? 0.0f : (v > 1.0f ? 1.0f : v);
        }
    }
    return grid;
}

double ground_truth_distance(const Obb& ego, std::span<const Obb> vehicles,
                             const SensorConfig& config) {
    double best = std::numeric_limits<double>::infinity();
    for (const Obb& vehicle : vehicles) {
        const Vec2 local = to_local(ego, vehicle.center);
        if (std::fabs(local.y) > config.corridor) continue;
        // Bumper-to-bumper gap.
        const double gap = local.x - vehicle.half_length - ego.half_length;
        if (gap < -2.0 * ego.half_length || gap > config.range) continue;
        best = std::min(best, std::max(0.0, gap));
    }
    return best;
}

ml::Dataset make_detector_dataset(std::size_t count, const SensorConfig& config,
                                  std::uint64_t seed) {
    if (count == 0) throw std::invalid_argument("make_detector_dataset: empty");
    util::Rng rng(seed);
    ml::Dataset out;
    out.num_classes = kDistanceBuckets;
    out.images.reserve(count);
    out.labels.reserve(count);

    const Obb ego{{0.0, 0.0}, 2.25, 0.95, 0.0};
    for (std::size_t i = 0; i < count; ++i) {
        std::vector<Obb> vehicles;
        // 25% clear scenes; otherwise a lead vehicle at a random gap.
        if (!rng.bernoulli(0.25)) {
            const double gap = rng.uniform(0.0, config.range + 6.0);
            Obb lead{{ego.half_length + 2.25 + gap, rng.uniform(-1.0, 1.0)},
                     2.25,
                     0.95,
                     rng.uniform(-0.12, 0.12)};
            vehicles.push_back(lead);
        }
        // Occasional off-corridor distractor (oncoming / parked).
        if (rng.bernoulli(0.35)) {
            vehicles.push_back({{rng.uniform(4.0, config.range),
                                 rng.bernoulli(0.5) ? rng.uniform(4.0, 10.0)
                                                    : rng.uniform(-10.0, -4.0)},
                                2.25,
                                0.95,
                                rng.uniform(-0.3, 0.3)});
        }
        const double truth = ground_truth_distance(ego, vehicles, config);
        out.labels.push_back(distance_to_bucket(truth));
        out.images.push_back(render_grid(ego, vehicles, config, rng));
    }
    return out;
}

}  // namespace mvreju::av
