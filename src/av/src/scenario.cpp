#include "mvreju/av/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>

namespace mvreju::av {

namespace {

/// One whitespace-delimited token plus its byte offset in the source text.
struct Token {
    std::string_view text;
    std::size_t offset = 0;
};

/// Lexer over the scenario text: skips whitespace and '#' comments, tracks
/// byte offsets so parse errors point at the offending token.
class Lexer {
public:
    explicit Lexer(std::string_view text) : text_(text) {}

    /// Next token, or std::nullopt at end of input.
    std::optional<Token> next() {
        for (;;) {
            while (pos_ < text_.size() &&
                   std::isspace(static_cast<unsigned char>(text_[pos_])))
                ++pos_;
            if (pos_ < text_.size() && text_[pos_] == '#') {
                while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
                continue;
            }
            break;
        }
        if (pos_ >= text_.size()) return std::nullopt;
        const std::size_t start = pos_;
        while (pos_ < text_.size() && text_[pos_] != '#' &&
               !std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        return Token{text_.substr(start, pos_ - start), start};
    }

    [[nodiscard]] std::size_t offset() const noexcept { return pos_; }

private:
    std::string_view text_;
    std::size_t pos_ = 0;
};

[[noreturn]] void fail(const std::string& what, std::size_t offset) {
    throw ScenarioParseError(what, offset);
}

Token expect(Lexer& lexer, const char* what) {
    auto token = lexer.next();
    if (!token) fail(std::string("expected ") + what + ", got end of input",
                     lexer.offset());
    return *token;
}

double parse_number(const Token& token, const char* what) {
    double value = 0.0;
    const char* begin = token.text.data();
    const char* end = begin + token.text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end)
        fail(std::string("expected ") + what + " number, got '" +
                 std::string(token.text) + "'",
             token.offset);
    return value;
}

std::uint64_t parse_uint(const Token& token, const char* what) {
    std::uint64_t value = 0;
    const char* begin = token.text.data();
    const char* end = begin + token.text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end)
        fail(std::string("expected ") + what + " integer, got '" +
                 std::string(token.text) + "'",
             token.offset);
    return value;
}

double parse_fraction(const Token& token, const char* what) {
    const double value = parse_number(token, what);
    if (value < 0.0 || value > 1.0)
        fail(std::string(what) + " must be in [0, 1], got '" +
                 std::string(token.text) + "'",
             token.offset);
    return value;
}

/// Compact canonical number rendering ("6", "0.18").
std::string format_number(double value) {
    std::ostringstream out;
    out << value;
    return out.str();
}

}  // namespace

const char* corruption_kind_name(CorruptionKind kind) noexcept {
    switch (kind) {
        case CorruptionKind::freeze: return "freeze";
        case CorruptionKind::blank: return "blank";
        case CorruptionKind::salt_pepper: return "salt_pepper";
        case CorruptionKind::low_light: return "low_light";
        case CorruptionKind::occlusion: return "occlusion";
    }
    return "unknown";
}

bool Scenario::any_sensor_fault(double t) const noexcept {
    for (const SensorFault& fault : sensor_faults)
        if (t >= fault.begin && t < fault.end) return true;
    return false;
}

Scenario parse_scenario(std::string_view text) {
    Lexer lexer(text);
    Scenario scenario;

    const auto header = lexer.next();
    if (!header || header->text != "scenario")
        fail("scenario file must start with 'scenario <name>'",
             header ? header->offset : 0);
    scenario.name = std::string(expect(lexer, "scenario name").text);

    for (auto token = lexer.next(); token; token = lexer.next()) {
        if (token->text == "seed") {
            scenario.seed = parse_uint(expect(lexer, "seed"), "seed");
            continue;
        }
        if (token->text != "at")
            fail("unknown directive '" + std::string(token->text) + "'",
                 token->offset);

        const Token at_token = expect(lexer, "start time");
        const double at = parse_number(at_token, "start time");
        Token op = expect(lexer, "directive");
        double until = std::numeric_limits<double>::infinity();
        bool has_until = false;
        std::size_t until_offset = 0;
        if (op.text == "until") {
            const Token until_token = expect(lexer, "end time");
            until = parse_number(until_token, "end time");
            until_offset = until_token.offset;
            has_until = true;
            if (until <= at)
                fail("'until' time must be after the 'at' time", until_offset);
            op = expect(lexer, "directive");
        }

        if (op.text == "freeze" || op.text == "blank" ||
            op.text == "saltpepper" || op.text == "lowlight" ||
            op.text == "occlude") {
            SensorFault fault;
            fault.begin = at;
            fault.end = until;
            if (op.text == "freeze") {
                fault.kind = CorruptionKind::freeze;
            } else if (op.text == "blank") {
                fault.kind = CorruptionKind::blank;
                // Optional level: peek — a following "at"/"seed" token means
                // the level was omitted and defaults to 0.
                Lexer peek = lexer;
                if (auto level = peek.next();
                    level && level->text != "at" && level->text != "seed") {
                    fault.a = parse_fraction(*level, "blank level");
                    lexer = peek;
                }
            } else if (op.text == "saltpepper") {
                fault.kind = CorruptionKind::salt_pepper;
                fault.a = parse_fraction(expect(lexer, "saltpepper fraction"),
                                         "saltpepper fraction");
            } else if (op.text == "lowlight") {
                fault.kind = CorruptionKind::low_light;
                fault.a = parse_fraction(expect(lexer, "lowlight gain"),
                                         "lowlight gain");
            } else {
                fault.kind = CorruptionKind::occlusion;
                fault.a = parse_fraction(expect(lexer, "occlusion start"),
                                         "occlusion start");
                fault.b = parse_fraction(expect(lexer, "occlusion height"),
                                         "occlusion height");
            }
            scenario.sensor_faults.push_back(fault);
            continue;
        }

        if (op.text == "compromise" || op.text == "fail" ||
            op.text == "inject") {
            if (has_until)
                fail("'until' is only valid on sensor corruptions",
                     until_offset);
            WeightFault fault;
            fault.at = at;
            fault.module = static_cast<int>(
                parse_uint(expect(lexer, "module index"), "module index"));
            if (op.text == "compromise") {
                fault.kind = WeightFaultKind::compromise;
            } else if (op.text == "fail") {
                fault.kind = WeightFaultKind::fail;
            } else {
                fault.kind = WeightFaultKind::inject;
                fault.layer = static_cast<std::size_t>(
                    parse_uint(expect(lexer, "layer index"), "layer index"));
                fault.seed = parse_uint(expect(lexer, "inject seed"),
                                        "inject seed");
            }
            scenario.weight_faults.push_back(fault);
            continue;
        }

        fail("unknown directive '" + std::string(op.text) + "'", op.offset);
    }

    // due_weight_faults walks a cursor, so keep events in delivery order.
    std::stable_sort(scenario.weight_faults.begin(),
                     scenario.weight_faults.end(),
                     [](const WeightFault& a, const WeightFault& b) {
                         return a.at < b.at;
                     });
    return scenario;
}

Scenario parse_scenario_file(const std::filesystem::path& path) {
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("parse_scenario_file: cannot open " +
                                 path.string());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse_scenario(buffer.str());
}

std::string to_text(const Scenario& scenario) {
    std::ostringstream out;
    out << "scenario " << scenario.name << "\n";
    out << "seed " << scenario.seed << "\n";
    for (const SensorFault& fault : scenario.sensor_faults) {
        out << "at " << format_number(fault.begin);
        if (fault.end != std::numeric_limits<double>::infinity())
            out << " until " << format_number(fault.end);
        switch (fault.kind) {
            case CorruptionKind::freeze:
                out << " freeze";
                break;
            case CorruptionKind::blank:
                out << " blank " << format_number(fault.a);
                break;
            case CorruptionKind::salt_pepper:
                out << " saltpepper " << format_number(fault.a);
                break;
            case CorruptionKind::low_light:
                out << " lowlight " << format_number(fault.a);
                break;
            case CorruptionKind::occlusion:
                out << " occlude " << format_number(fault.a) << ' '
                    << format_number(fault.b);
                break;
        }
        out << "\n";
    }
    for (const WeightFault& fault : scenario.weight_faults) {
        out << "at " << format_number(fault.at);
        switch (fault.kind) {
            case WeightFaultKind::compromise:
                out << " compromise " << fault.module;
                break;
            case WeightFaultKind::fail:
                out << " fail " << fault.module;
                break;
            case WeightFaultKind::inject:
                out << " inject " << fault.module << ' ' << fault.layer << ' '
                    << fault.seed;
                break;
        }
        out << "\n";
    }
    return out.str();
}

namespace {

/// The benchmark matrix's scenario classes. Windows sit inside the default
/// 33 s horizon; magnitudes are calibrated so each class measurably degrades
/// perception while staying physically plausible (see DESIGN.md).
const std::pair<const char*, const char*> kBuiltins[] = {
    {"clear",
     "scenario clear\n"
     "seed 1\n"},
    {"freeze",
     "scenario freeze\n"
     "seed 1\n"
     "at 6 until 16 freeze\n"
     "at 22 until 27 freeze\n"},
    {"blank",
     "scenario blank\n"
     "seed 1\n"
     "at 5 until 12 blank 0\n"
     "at 18 until 24 blank 0.05\n"},
    {"salt_pepper",
     "scenario salt_pepper\n"
     "seed 1\n"
     "at 4 until 26 saltpepper 0.18\n"},
    {"low_light",
     "scenario low_light\n"
     "seed 1\n"
     "at 5 until 25 lowlight 0.22\n"},
    {"occlusion",
     "scenario occlusion\n"
     "seed 1\n"
     "at 5 until 25 occlude 0.25 0.45\n"},
    {"compound",
     // Sensor corruption on top of an early forced compromise: the
     // worst-case overlap of input- and weight-level faults.
     "scenario compound\n"
     "seed 1\n"
     "at 3 compromise 0\n"
     "at 6 until 18 freeze\n"
     "at 20 until 26 saltpepper 0.15\n"},
};

}  // namespace

const std::vector<std::string>& builtin_scenario_names() {
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const auto& [name, text] : kBuiltins) out.emplace_back(name);
        return out;
    }();
    return names;
}

std::string builtin_scenario_text(const std::string& name) {
    for (const auto& [builtin, text] : kBuiltins)
        if (name == builtin) return text;
    throw std::invalid_argument("unknown built-in scenario '" + name + "'");
}

Scenario builtin_scenario(const std::string& name) {
    return parse_scenario(builtin_scenario_text(name));
}

ScenarioPlayer::ScenarioPlayer(Scenario scenario)
    : ScenarioPlayer(std::move(scenario), 0) {
    seed_ = scenario_.seed;
    impulse_base_ = util::Rng(seed_);
}

ScenarioPlayer::ScenarioPlayer(Scenario scenario, std::uint64_t seed)
    : scenario_(std::move(scenario)), seed_(seed), impulse_base_(seed) {}

std::vector<CorruptionKind> ScenarioPlayer::active(double t) const {
    std::vector<CorruptionKind> kinds;
    for (const SensorFault& fault : scenario_.sensor_faults)
        if (t >= fault.begin && t < fault.end) kinds.push_back(fault.kind);
    return kinds;
}

ml::Tensor ScenarioPlayer::apply(const ml::Tensor& clean, double t) {
    const std::size_t frame = frame_index_++;
    ml::Tensor out = clean;
    bool freeze = false;
    for (const SensorFault& fault : scenario_.sensor_faults) {
        if (t < fault.begin || t >= fault.end) continue;
        switch (fault.kind) {
            case CorruptionKind::freeze:
                // Applied last: a frozen pipeline re-emits its previous
                // output regardless of what else corrupts the new frame.
                freeze = true;
                break;
            case CorruptionKind::blank: {
                const auto level = static_cast<float>(fault.a);
                for (std::size_t i = 0; i < out.size(); ++i) out[i] = level;
                break;
            }
            case CorruptionKind::salt_pepper: {
                // Per-frame substream: impulse positions depend only on
                // (seed, frame index), never on other consumers' draws.
                util::Rng rng = impulse_base_.split(frame);
                for (std::size_t i = 0; i < out.size(); ++i)
                    if (rng.bernoulli(fault.a))
                        out[i] = rng.bernoulli(0.5) ? 1.0f : 0.0f;
                break;
            }
            case CorruptionKind::low_light: {
                const auto gain = static_cast<float>(fault.a);
                for (std::size_t i = 0; i < out.size(); ++i) out[i] *= gain;
                break;
            }
            case CorruptionKind::occlusion: {
                // Zero a horizontal band across every channel: a smear or
                // physical obstruction over part of the field of view.
                const std::size_t channels = out.shape()[0];
                const std::size_t height = out.shape()[1];
                const std::size_t width = out.shape()[2];
                const auto row0 = static_cast<std::size_t>(fault.a * height);
                const auto rows = static_cast<std::size_t>(fault.b * height);
                const std::size_t row1 = std::min(row0 + rows, height);
                for (std::size_t c = 0; c < channels; ++c)
                    for (std::size_t h = row0; h < row1; ++h)
                        for (std::size_t w = 0; w < width; ++w)
                            out.at3(c, h, w) = 0.0f;
                break;
            }
        }
    }
    if (freeze && has_output_) {
        if (!frozen_) frozen_ = true;
        return last_output_;
    }
    frozen_ = false;
    last_output_ = out;
    has_output_ = true;
    return out;
}

std::vector<WeightFault> ScenarioPlayer::due_weight_faults(double t) {
    std::vector<WeightFault> due;
    while (next_weight_ < scenario_.weight_faults.size() &&
           scenario_.weight_faults[next_weight_].at <= t)
        due.push_back(scenario_.weight_faults[next_weight_++]);
    return due;
}

}  // namespace mvreju::av
