#include "mvreju/av/route.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace mvreju::av {

Route::Route(std::string name, std::vector<Vec2> waypoints, double speed_limit)
    : name_(std::move(name)), waypoints_(std::move(waypoints)), speed_limit_(speed_limit) {
    if (waypoints_.size() < 2) throw std::invalid_argument("Route: need >= 2 waypoints");
    if (speed_limit_ <= 0.0) throw std::invalid_argument("Route: non-positive speed limit");
    cumulative_.resize(waypoints_.size());
    cumulative_[0] = 0.0;
    for (std::size_t i = 1; i < waypoints_.size(); ++i) {
        const double seg = (waypoints_[i] - waypoints_[i - 1]).norm();
        if (seg <= 0.0) throw std::invalid_argument("Route: duplicate waypoints");
        cumulative_[i] = cumulative_[i - 1] + seg;
    }
}

std::size_t Route::segment_of(double s) const {
    const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), s);
    const std::size_t idx = static_cast<std::size_t>(it - cumulative_.begin());
    if (idx == 0) return 0;
    return std::min(idx - 1, waypoints_.size() - 2);
}

Vec2 Route::point_at(double s) const {
    s = std::clamp(s, 0.0, length());
    const std::size_t i = segment_of(s);
    const double seg_len = cumulative_[i + 1] - cumulative_[i];
    const double t = (s - cumulative_[i]) / seg_len;
    return waypoints_[i] + (waypoints_[i + 1] - waypoints_[i]) * t;
}

double Route::heading_at(double s) const {
    s = std::clamp(s, 0.0, length());
    const std::size_t i = segment_of(s);
    const Vec2 d = waypoints_[i + 1] - waypoints_[i];
    return std::atan2(d.y, d.x);
}

double Route::curvature_at(double s) const {
    constexpr double h = 3.0;
    const double s0 = std::clamp(s - h, 0.0, length());
    const double s1 = std::clamp(s + h, 0.0, length());
    if (s1 - s0 < 1e-6) return 0.0;
    const double dh = wrap_angle(heading_at(s1) - heading_at(s0));
    return std::fabs(dh) / (s1 - s0);
}

double Route::project(Vec2 p, double hint, double window) const {
    const double lo = std::clamp(hint - window, 0.0, length());
    const double hi = std::clamp(hint + window, 0.0, length());
    const std::size_t first = segment_of(lo);
    const std::size_t last = segment_of(hi);

    double best_s = lo;
    double best_d2 = (point_at(lo) - p).dot(point_at(lo) - p);
    for (std::size_t i = first; i <= last; ++i) {
        const Vec2 a = waypoints_[i];
        const Vec2 b = waypoints_[i + 1];
        const Vec2 ab = b - a;
        const double seg_len2 = ab.dot(ab);
        double t = seg_len2 > 0.0 ? (p - a).dot(ab) / seg_len2 : 0.0;
        t = std::clamp(t, 0.0, 1.0);
        const Vec2 q = a + ab * t;
        const double d2 = (q - p).dot(q - p);
        if (d2 < best_d2) {
            best_d2 = d2;
            best_s = cumulative_[i] + std::sqrt(seg_len2) * t;
        }
    }
    return std::clamp(best_s, lo, hi);
}

namespace {

constexpr double kStep = 3.0;  ///< waypoint spacing in metres

void append_straight(std::vector<Vec2>& pts, Vec2 to) {
    const Vec2 from = pts.back();
    const double len = (to - from).norm();
    const int n = std::max(1, static_cast<int>(len / kStep));
    for (int i = 1; i <= n; ++i) pts.push_back(from + (to - from) * (double(i) / n));
}

/// Append a circular arc around `center` from angle a0 to a1 (radians,
/// signed sweep), radius r. The first point of the arc is assumed to match
/// pts.back().
void append_arc(std::vector<Vec2>& pts, Vec2 center, double r, double a0, double a1) {
    const double sweep = a1 - a0;
    const int n = std::max(2, static_cast<int>(std::fabs(sweep) * r / kStep));
    for (int i = 1; i <= n; ++i) {
        const double a = a0 + sweep * (double(i) / n);
        pts.push_back(center + Vec2{std::cos(a), std::sin(a)} * r);
    }
}

Town make_town02() {
    // City grid: right-angle corners joined by r=12 arcs.
    Town town{"Town02", {}};
    {
        std::vector<Vec2> pts{{0.0, 0.0}};
        append_straight(pts, {128.0, 0.0});
        append_arc(pts, {128.0, 12.0}, 12.0, -1.5707963, 0.0);
        append_straight(pts, {140.0, 140.0});
        town.routes.emplace_back("Town02#1", std::move(pts), 9.0);
    }
    {
        std::vector<Vec2> pts{{0.0, 60.0}};
        append_straight(pts, {80.0, 60.0});
        append_arc(pts, {80.0, 48.0}, 12.0, 1.5707963, 0.0);
        append_straight(pts, {92.0, -40.0});
        append_arc(pts, {104.0, -40.0}, 12.0, 3.1415926, 4.7123889);
        append_straight(pts, {200.0, -52.0});
        town.routes.emplace_back("Town02#2", std::move(pts), 9.0);
    }
    return town;
}

Town make_town03() {
    // Ring road with chords.
    Town town{"Town03", {}};
    {
        std::vector<Vec2> pts{{60.0, 0.0}};
        append_arc(pts, {0.0, 0.0}, 60.0, 0.0, 3.1415926);  // half ring
        append_straight(pts, {-60.0, -90.0});
        town.routes.emplace_back("Town03#1", std::move(pts), 10.0);
    }
    {
        std::vector<Vec2> pts{{0.0, -60.0}};
        append_arc(pts, {0.0, 0.0}, 60.0, -1.5707963, 1.8);  // ~3/4 ring
        const Vec2 exit = pts.back();
        append_straight(pts, exit + heading_dir(1.8 + 1.5707963) * 80.0);
        town.routes.emplace_back("Town03#2", std::move(pts), 10.0);
    }
    return town;
}

Town make_town04() {
    // Highway figure-eight: two opposing sweeping arcs.
    Town town{"Town04", {}};
    {
        std::vector<Vec2> pts{{0.0, 0.0}};
        append_straight(pts, {60.0, 0.0});
        append_arc(pts, {60.0, 80.0}, 80.0, -1.5707963, 0.3);
        const Vec2 exit = pts.back();
        append_straight(pts, exit + heading_dir(0.3 + 1.5707963) * 60.0);
        town.routes.emplace_back("Town04#1", std::move(pts), 11.0);
    }
    {
        std::vector<Vec2> pts{{0.0, 40.0}};
        append_arc(pts, {0.0, 120.0}, 80.0, -1.5707963, -0.2);
        Vec2 exit = pts.back();
        append_straight(pts, exit + heading_dir(-0.2 + 1.5707963) * 40.0);
        exit = pts.back();
        append_arc(pts, exit + heading_dir(-0.2) * 70.0, 70.0,
                   3.1415926 - 0.2, 1.2);
        town.routes.emplace_back("Town04#2", std::move(pts), 11.0);
    }
    return town;
}

Town make_town05() {
    // Suburban S-curves: sinusoidal centreline.
    Town town{"Town05", {}};
    auto sine_route = [](const char* name, double amplitude, double wavelength,
                         double total, double phase) {
        std::vector<Vec2> pts;
        const int n = static_cast<int>(total / kStep);
        for (int i = 0; i <= n; ++i) {
            const double x = total * (double(i) / n);
            pts.push_back(
                {x, amplitude * std::sin(6.283185307 * x / wavelength + phase)});
        }
        return Route(name, std::move(pts), 8.5);
    };
    town.routes.push_back(sine_route("Town05#1", 18.0, 160.0, 300.0, 0.0));
    town.routes.push_back(sine_route("Town05#2", 24.0, 210.0, 300.0, 1.2));
    return town;
}

}  // namespace

std::vector<Town> make_towns() {
    return {make_town02(), make_town03(), make_town04(), make_town05()};
}

std::vector<RouteRef> evaluation_routes(const std::vector<Town>& towns) {
    std::vector<RouteRef> refs;
    for (std::size_t t = 0; t < towns.size(); ++t)
        for (std::size_t r = 0; r < towns[t].routes.size(); ++r) refs.push_back({t, r});
    return refs;
}

std::string render_ascii(const Route& route, int width, int height) {
    if (width < 8 || height < 4) throw std::invalid_argument("render_ascii: too small");
    double min_x = route.waypoints()[0].x;
    double max_x = min_x;
    double min_y = route.waypoints()[0].y;
    double max_y = min_y;
    for (const Vec2& p : route.waypoints()) {
        min_x = std::min(min_x, p.x);
        max_x = std::max(max_x, p.x);
        min_y = std::min(min_y, p.y);
        max_y = std::max(max_y, p.y);
    }
    const double span_x = std::max(max_x - min_x, 1.0);
    const double span_y = std::max(max_y - min_y, 1.0);

    std::vector<std::string> grid(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));
    auto plot = [&](Vec2 p, char c) {
        const int gx = static_cast<int>((p.x - min_x) / span_x * (width - 1));
        const int gy = static_cast<int>((max_y - p.y) / span_y * (height - 1));
        grid[static_cast<std::size_t>(gy)][static_cast<std::size_t>(gx)] = c;
    };
    for (double s = 0.0; s <= route.length(); s += route.length() / (width * 4))
        plot(route.point_at(s), '#');
    plot(route.waypoints().front(), 'o');
    plot(route.waypoints().back(), '*');

    std::ostringstream out;
    out << route.name() << "  (" << static_cast<int>(route.length()) << " m)\n";
    for (const auto& row : grid) out << row << "\n";
    return out.str();
}

}  // namespace mvreju::av
