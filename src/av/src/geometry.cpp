#include "mvreju/av/geometry.hpp"

#include <array>

namespace mvreju::av {

double wrap_angle(double angle) noexcept {
    constexpr double two_pi = 6.283185307179586;
    while (angle > 3.141592653589793) angle -= two_pi;
    while (angle <= -3.141592653589793) angle += two_pi;
    return angle;
}

namespace {

std::array<Vec2, 4> corners(const Obb& box) noexcept {
    const Vec2 fwd = heading_dir(box.heading);
    const Vec2 left = fwd.perp();
    const Vec2 dl = fwd * box.half_length;
    const Vec2 dw = left * box.half_width;
    return {box.center + dl + dw, box.center + dl - dw, box.center - dl + dw,
            box.center - dl - dw};
}

/// Projection interval of a box onto an axis.
void project(const std::array<Vec2, 4>& pts, Vec2 axis, double& lo, double& hi) noexcept {
    lo = hi = pts[0].dot(axis);
    for (std::size_t i = 1; i < 4; ++i) {
        const double v = pts[i].dot(axis);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
}

}  // namespace

bool overlaps(const Obb& a, const Obb& b) noexcept {
    const auto pa = corners(a);
    const auto pb = corners(b);
    const std::array<Vec2, 4> axes = {heading_dir(a.heading), heading_dir(a.heading).perp(),
                                      heading_dir(b.heading), heading_dir(b.heading).perp()};
    for (Vec2 axis : axes) {
        double alo;
        double ahi;
        double blo;
        double bhi;
        project(pa, axis, alo, ahi);
        project(pb, axis, blo, bhi);
        if (ahi < blo || bhi < alo) return false;  // separating axis found
    }
    return true;
}

Vec2 to_local(const Obb& frame, Vec2 world) noexcept {
    const Vec2 d = world - frame.center;
    const Vec2 fwd = heading_dir(frame.heading);
    return {d.dot(fwd), d.dot(fwd.perp())};
}

}  // namespace mvreju::av
