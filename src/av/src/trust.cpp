#include "mvreju/av/trust.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace mvreju::av {

const char* sensor_status_name(SensorStatus status) noexcept {
    switch (status) {
        case SensorStatus::ok: return "ok";
        case SensorStatus::frozen: return "frozen";
        case SensorStatus::blank: return "blank";
        case SensorStatus::corrupted: return "corrupted";
    }
    return "unknown";
}

TrustMonitor::TrustMonitor(TrustConfig config) : config_(config) {}

FrameStats TrustMonitor::compute_stats(const ml::Tensor& frame,
                                       const ml::Tensor* previous) {
    FrameStats stats;
    const std::span<const float> data = frame.data();
    if (data.empty()) return stats;
    const double count = static_cast<double>(data.size());

    double sum = 0.0;
    double impulses = 0.0;
    std::array<double, 8> histogram{};
    for (const float v : data) {
        sum += v;
        if (v >= 0.98f) impulses += 1.0;
        const auto bin = static_cast<std::size_t>(
            std::clamp(static_cast<int>(v * 8.0f), 0, 7));
        histogram[bin] += 1.0;
    }
    stats.luma = sum / count;
    stats.impulse = impulses / count;
    for (const double n : histogram) {
        if (n <= 0.0) continue;
        const double p = n / count;
        stats.entropy -= p * std::log(p);
    }

    if (previous != nullptr && previous->shape() == frame.shape()) {
        double delta = 0.0;
        const std::span<const float> prev = previous->data();
        for (std::size_t i = 0; i < data.size(); ++i)
            delta += std::abs(static_cast<double>(data[i]) - prev[i]);
        stats.delta = delta / count;
    } else {
        // First frame: no reference yet; report a clean-looking delta so a
        // run never starts in the frozen state.
        stats.delta = 1.0;
    }

    // Reference-channel check: channel 1 of the sensor tensor is the
    // deterministic forward-distance ramp (row h carries 1 - h/n), so its
    // deviation flags any corruption that touches pixel values.
    if (frame.rank() == 3 && frame.shape()[0] >= 2) {
        const std::size_t height = frame.shape()[1];
        const std::size_t width = frame.shape()[2];
        double deviation = 0.0;
        for (std::size_t h = 0; h < height; ++h) {
            const double expected =
                1.0 - static_cast<double>(h) / static_cast<double>(height);
            for (std::size_t w = 0; w < width; ++w)
                deviation += std::abs(frame.at3(1, h, w) - expected);
        }
        stats.ramp_dev = deviation / static_cast<double>(height * width);
    }
    return stats;
}

SensorStatus TrustMonitor::update(const ml::Tensor& frame, double dt) {
    stats_ = compute_stats(frame, has_previous_ ? &previous_ : nullptr);
    previous_ = frame;
    has_previous_ = true;

    // Order matters: a frozen frame trivially passes the blank and
    // corruption checks (it is a copy of a once-valid frame), so the
    // zero-delta test must run first; a blank frame has a tiny ramp
    // deviation signature too, so blank precedes corrupted.
    if (stats_.delta < config_.freeze_delta) {
        status_ = SensorStatus::frozen;
    } else if (stats_.luma < config_.blank_luma ||
               stats_.entropy < config_.blank_entropy) {
        status_ = SensorStatus::blank;
    } else if (stats_.ramp_dev > config_.ramp_deviation ||
               stats_.impulse > config_.impulse_fraction) {
        status_ = SensorStatus::corrupted;
    } else {
        status_ = SensorStatus::ok;
    }

    if (status_ == SensorStatus::ok)
        reliability_ = std::min(1.0, reliability_ + config_.recovery * dt);
    else
        reliability_ = std::max(0.0, reliability_ - config_.fault_decay * dt);
    return status_;
}

void TrustMonitor::observe_vote(bool decided, double dt) {
    if (!decided)
        reliability_ = std::max(0.0, reliability_ - config_.vote_decay * dt);
}

}  // namespace mvreju::av
