#include "mvreju/av/vehicle.hpp"

#include <algorithm>
#include <stdexcept>

namespace mvreju::av {

EgoVehicle::EgoVehicle(Vec2 position, double heading, double wheelbase)
    : position_(position), heading_(heading), wheelbase_(wheelbase) {
    if (wheelbase <= 0.0) throw std::invalid_argument("EgoVehicle: wheelbase <= 0");
}

void EgoVehicle::step(double accel, double steer, double dt) {
    if (dt <= 0.0) throw std::invalid_argument("EgoVehicle::step: dt <= 0");
    speed_ = std::max(0.0, speed_ + accel * dt);
    heading_ = wrap_angle(heading_ + speed_ / wheelbase_ * std::tan(steer) * dt);
    position_ = position_ + heading_dir(heading_) * (speed_ * dt);
}

NpcVehicle::NpcVehicle(const Route& route, double initial_s, NpcProfile profile,
                       std::uint64_t seed)
    : route_(&route),
      s_(initial_s),
      speed_(profile.cruise_speed),
      profile_(profile),
      phase_left_(profile.cruise_time),
      rng_(seed) {
    if (initial_s < 0.0 || initial_s > route.length())
        throw std::invalid_argument("NpcVehicle: initial arc length outside route");
    // Desynchronise the first braking episode across NPCs.
    phase_left_ = rng_.uniform(0.3, 1.0) * profile.cruise_time;
}

void NpcVehicle::step(double dt) {
    switch (phase_) {
        case Phase::cruise:
            speed_ = profile_.cruise_speed;
            phase_left_ -= dt;
            if (phase_left_ <= 0.0) phase_ = Phase::braking;
            break;
        case Phase::braking:
            speed_ = std::max(0.0, speed_ - profile_.brake * dt);
            if (speed_ == 0.0) {
                phase_ = Phase::stopped;
                phase_left_ = rng_.uniform(0.6, 1.4) * profile_.stop_time;
            }
            break;
        case Phase::stopped:
            phase_left_ -= dt;
            if (phase_left_ <= 0.0) phase_ = Phase::accelerating;
            break;
        case Phase::accelerating:
            speed_ = std::min(profile_.cruise_speed, speed_ + profile_.accel * dt);
            if (speed_ >= profile_.cruise_speed) {
                phase_ = Phase::cruise;
                phase_left_ = rng_.uniform(0.6, 1.4) * profile_.cruise_time;
            }
            break;
    }
    s_ = std::min(route_->length(), s_ + speed_ * dt);
}

Obb NpcVehicle::obb() const {
    return {route_->point_at(s_), 2.25, 0.95, route_->heading_at(s_)};
}

}  // namespace mvreju::av
