#pragma once

// Sensor-failure scenario DSL and deterministic replay (ROADMAP item 3).
//
// The paper injects faults into model *weights*; real perception also fails
// at the *input*: frozen, blank, corrupted, low-light and occluded frames.
// A scenario is a small text program describing timed sensor corruptions,
// composable with the weight-fault machinery (forced compromises/failures of
// the health process and direct fi:: weight injections), replayed bit-
// identically for a given (scenario, seed) at any thread count.
//
// Format (line-based; '#' starts a comment; whitespace separates tokens):
//
//   scenario <name>                       # required first directive
//   seed <uint>                           # default replay seed (optional)
//   at <t> [until <t>] freeze             # repeat the last delivered frame
//   at <t> [until <t>] blank [<level>]    # every pixel = level (default 0)
//   at <t> [until <t>] saltpepper <frac>  # impulse noise on <frac> of pixels
//   at <t> [until <t>] lowlight <gain>    # multiply every pixel by gain < 1
//   at <t> [until <t>] occlude <start> <height>  # zero a horizontal band
//                                         # (fractions of the grid height)
//   at <t> compromise <module>            # force a health-process compromise
//   at <t> fail <module>                  # force a module crash
//   at <t> inject <module> <layer> <seed> # fi::random_weight_inj on the
//                                         # module's healthy weights
//
// Omitting `until` keeps a corruption active to the end of the run. Parse
// errors carry the byte offset of the offending token.

#include <cstdint>
#include <filesystem>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "mvreju/ml/tensor.hpp"
#include "mvreju/util/rng.hpp"

namespace mvreju::av {

/// Sensor-level corruption kinds (the VISION_FROZEN/BLANK/CORRUPTED failure
/// modes of camera pipelines, plus low-light and partial occlusion).
enum class CorruptionKind { freeze, blank, salt_pepper, low_light, occlusion };

/// Stable lower-case name ("freeze", "salt_pepper", ...).
[[nodiscard]] const char* corruption_kind_name(CorruptionKind kind) noexcept;

/// One timed sensor corruption, active on frames with begin <= t < end.
struct SensorFault {
    double begin = 0.0;
    double end = std::numeric_limits<double>::infinity();
    CorruptionKind kind = CorruptionKind::freeze;
    /// Kind-specific parameters: blank level / salt-pepper fraction /
    /// low-light gain / occlusion band start (fraction of grid height).
    double a = 0.0;
    /// Occlusion band height as a fraction of the grid height.
    double b = 0.0;
};

enum class WeightFaultKind {
    compromise,  ///< force the module compromised in the health process
    fail,        ///< force the module non-functional
    inject,      ///< fi::random_weight_inj on the module's healthy weights
};

/// One scheduled weight-fault event (instantaneous, composes the sensor
/// scenario with the fi campaign fault models).
struct WeightFault {
    double at = 0.0;
    int module = 0;
    WeightFaultKind kind = WeightFaultKind::compromise;
    std::size_t layer = 0;   ///< inject only
    std::uint64_t seed = 0;  ///< inject only
};

struct Scenario {
    std::string name;
    std::uint64_t seed = 1;  ///< default replay seed (overridable per run)
    std::vector<SensorFault> sensor_faults;
    std::vector<WeightFault> weight_faults;

    /// True when any sensor corruption is active at time t.
    [[nodiscard]] bool any_sensor_fault(double t) const noexcept;
};

/// Parse failure with the byte offset of the offending token in the input.
class ScenarioParseError : public std::runtime_error {
public:
    ScenarioParseError(const std::string& what, std::size_t offset)
        : std::runtime_error(what + " (byte " + std::to_string(offset) + ")"),
          offset_(offset) {}
    [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

private:
    std::size_t offset_;
};

/// Parse a scenario program; throws ScenarioParseError on malformed input.
[[nodiscard]] Scenario parse_scenario(std::string_view text);

/// Parse a scenario file; throws std::runtime_error when unreadable.
[[nodiscard]] Scenario parse_scenario_file(const std::filesystem::path& path);

/// Canonical text rendering (parses back to an identical scenario).
[[nodiscard]] std::string to_text(const Scenario& scenario);

/// Names of the built-in scenario classes exercised by the benchmark matrix:
/// "clear", "freeze", "blank", "salt_pepper", "low_light", "occlusion",
/// "compound".
[[nodiscard]] const std::vector<std::string>& builtin_scenario_names();

/// A built-in scenario by name; throws std::invalid_argument for unknown
/// names. `builtin_scenario_text` returns its DSL source.
[[nodiscard]] Scenario builtin_scenario(const std::string& name);
[[nodiscard]] std::string builtin_scenario_text(const std::string& name);

/// Seeded deterministic replay of a scenario's sensor corruptions.
///
/// `apply` is called once per frame, in frame order, with the clean sensor
/// tensor; it returns the corrupted frame. All randomness (salt-and-pepper
/// impulse positions) derives from (seed, frame index) alone, so replays are
/// bit-identical for a given (scenario, seed) regardless of thread count or
/// how many other players run concurrently — each replay owns its player.
class ScenarioPlayer {
public:
    explicit ScenarioPlayer(Scenario scenario);
    ScenarioPlayer(Scenario scenario, std::uint64_t seed);

    /// Corrupt the clean frame for time t. Frames must be fed in order.
    [[nodiscard]] ml::Tensor apply(const ml::Tensor& clean, double t);

    /// Corruption kinds active at time t, in event order.
    [[nodiscard]] std::vector<CorruptionKind> active(double t) const;

    /// Weight-fault events due at or before t and not yet delivered.
    /// Each event is returned exactly once across the whole replay.
    [[nodiscard]] std::vector<WeightFault> due_weight_faults(double t);

    [[nodiscard]] const Scenario& scenario() const noexcept { return scenario_; }
    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

private:
    Scenario scenario_;
    std::uint64_t seed_ = 1;
    util::Rng impulse_base_;      ///< split per frame for salt-and-pepper
    std::size_t frame_index_ = 0; ///< frames delivered so far
    std::size_t next_weight_ = 0; ///< cursor into sorted weight_faults
    bool frozen_ = false;
    ml::Tensor last_output_;      ///< most recent delivered frame (for freeze)
    bool has_output_ = false;
};

}  // namespace mvreju::av
