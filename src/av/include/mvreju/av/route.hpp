#pragma once

// Routes and towns. A route is an arc-length parameterised polyline with a
// speed limit; towns bundle the eight evaluation routes of Section VII-A
// (two per town, mirroring the paper's Town02-Town05 selection in CARLA).

#include <string>
#include <vector>

#include "mvreju/av/geometry.hpp"

namespace mvreju::av {

/// Arc-length parameterised polyline path.
class Route {
public:
    Route(std::string name, std::vector<Vec2> waypoints, double speed_limit);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] double length() const noexcept { return cumulative_.back(); }
    [[nodiscard]] double speed_limit() const noexcept { return speed_limit_; }
    [[nodiscard]] const std::vector<Vec2>& waypoints() const noexcept { return waypoints_; }

    /// World point at arc length s (clamped to [0, length]).
    [[nodiscard]] Vec2 point_at(double s) const;

    /// Tangent heading (radians) at arc length s.
    [[nodiscard]] double heading_at(double s) const;

    /// Unsigned curvature (1/m) at arc length s, estimated by the heading
    /// change over a +-3 m window.
    [[nodiscard]] double curvature_at(double s) const;

    /// Arc length of the point on the route closest to `p`, searched within
    /// [hint - window, hint + window] (local tracking; the ego never jumps).
    [[nodiscard]] double project(Vec2 p, double hint, double window = 30.0) const;

private:
    [[nodiscard]] std::size_t segment_of(double s) const;

    std::string name_;
    std::vector<Vec2> waypoints_;
    std::vector<double> cumulative_;  // cumulative_[i] = arc length at waypoint i
    double speed_limit_;
};

/// A named map with its evaluation routes.
struct Town {
    std::string name;
    std::vector<Route> routes;
};

/// The four evaluation towns (2 routes each, 8 routes total, Fig. 5).
/// Town02: city grid with right-angle turns. Town03: ring road with chords.
/// Town04: highway figure-eight. Town05: suburban S-curves.
[[nodiscard]] std::vector<Town> make_towns();

/// Flat list of the eight evaluation routes as (town index, route index).
struct RouteRef {
    std::size_t town = 0;
    std::size_t route = 0;
};
[[nodiscard]] std::vector<RouteRef> evaluation_routes(const std::vector<Town>& towns);

/// ASCII sketch of a route within its town (Fig. 5 rendering): 'o' start,
/// '*' end, '#' path.
[[nodiscard]] std::string render_ascii(const Route& route, int width = 56, int height = 20);

}  // namespace mvreju::av
