#pragma once

// Perception versions for the AV case study: three diverse detector
// networks (stand-ins for the YOLOv5s6/m6/l6 variants of Section VII-A)
// classifying the sensor grid into distance buckets, plus their compromised
// (weight-fault-injected) twins, with disk caching so the benchmarks do not
// retrain on every run.

#include <filesystem>
#include <optional>

#include "mvreju/av/sensor.hpp"
#include "mvreju/ml/model.hpp"

namespace mvreju::av {

/// A perception proposal: the distance bucket of the nearest in-lane
/// vehicle (see sensor.hpp for the bucket space).
struct Detection {
    int bucket = 0;
    friend bool operator==(Detection, Detection) = default;
};

/// Approximate agreement for the voter: adjacent buckets agree (the
/// approximate-voting option the paper cites from Dolev et al.).
struct DetectionNear {
    [[nodiscard]] bool operator()(Detection a, Detection b) const noexcept {
        const int diff = a.bucket - b.bucket;
        return diff >= -1 && diff <= 1;
    }
};

/// The detector architectures (nano..xlarge, mirroring the YOLOv5 family).
[[nodiscard]] ml::Sequential make_detector_n(const SensorConfig& config,
                                             std::uint64_t seed);
[[nodiscard]] ml::Sequential make_detector_s(const SensorConfig& config,
                                             std::uint64_t seed);
[[nodiscard]] ml::Sequential make_detector_m(const SensorConfig& config,
                                             std::uint64_t seed);
[[nodiscard]] ml::Sequential make_detector_l(const SensorConfig& config,
                                             std::uint64_t seed);
[[nodiscard]] ml::Sequential make_detector_x(const SensorConfig& config,
                                             std::uint64_t seed);

/// One corrupted variant of a detector version.
struct CompromisedVariant {
    ml::Sequential model;
    double accuracy = 0.0;
    double optimism = 0.0;  ///< optimistic rate on hazard scenes
    std::uint64_t injection_seed = 0;
    std::size_t injection_layer = 0;
};

/// Healthy detectors plus pools of compromised variants. Each compromise
/// event at runtime draws a fresh variant (PyTorchFI-style runtime
/// perturbation): a module corrupted twice does not fail identically.
struct DetectorSet {
    std::vector<ml::Sequential> healthy;
    std::vector<std::vector<CompromisedVariant>> compromised;  ///< [version][variant]
    std::vector<double> healthy_accuracy;
};

struct DetectorTrainOptions {
    std::size_t train_samples = 4000;
    std::size_t eval_samples = 800;
    int epochs = 8;
    float learning_rate = 0.02f;
    float lr_decay = 0.9f;
    std::uint64_t seed = 38;
    /// PyTorchFI-style weight corruption range used in the paper (Section
    /// VII-A): random_weight_inj with (-100, 300).
    float inject_min = -100.0f;
    float inject_max = 300.0f;
    /// Accept an injection seed when the compromised model is *optimistic*:
    /// on scenes with a vehicle within 27 m (truth bucket >= 3) it reports a
    /// bucket at least two steps farther than reality at this rate or more.
    /// This mirrors the dominant failure mode of a weight-corrupted object
    /// detector: missed/underestimated detections.
    double min_optimistic_rate = 0.5;
    /// Variants collected per version. Within a version's pool, variants are
    /// deduplicated by their hazard-scene prediction signature so the pool
    /// spans distinct failure modes (collapse-to-clear, collapse-to-far,
    /// mixed garbage, ...).
    std::size_t variants_per_version = 1;
    /// Number of diverse versions to prepare (3 for the paper's case study,
    /// up to 5 for the N>3 extension experiments).
    std::size_t versions = 3;
    /// Cache directory for trained parameters ("" disables caching).
    std::filesystem::path cache_dir;
};

/// Train (or load from cache) the three detector versions and produce the
/// compromised twins by deterministic fault-injection seed scanning.
[[nodiscard]] DetectorSet prepare_detectors(const SensorConfig& config,
                                            const DetectorTrainOptions& options);

/// Run one detector on a sensor grid.
[[nodiscard]] Detection detect(const ml::Sequential& model, const ml::Tensor& grid);

}  // namespace mvreju::av
