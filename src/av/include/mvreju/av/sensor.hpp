#pragma once

// Sensor model: an ego-frame occupancy grid rendered from the vehicles
// around the ego (the LiDAR/camera stand-in), the distance-bucket output
// space of the detectors, and the scene generator used to train them.

#include <span>

#include "mvreju/av/geometry.hpp"
#include "mvreju/ml/model.hpp"
#include "mvreju/util/rng.hpp"

namespace mvreju::av {

/// Detector output space: bucket 0 = no vehicle ahead within range; buckets
/// 1..7 = decreasing distance (7 = imminent). This discretisation plays the
/// role of YOLO's bounding-box distance estimate in the OpenCDA pipeline.
inline constexpr int kDistanceBuckets = 8;

/// Bucket for a forward distance in metres.
[[nodiscard]] int distance_to_bucket(double distance) noexcept;

/// Conservative (bucket lower-edge) distance in metres for planning;
/// bucket 0 maps to +inf.
[[nodiscard]] double bucket_to_distance(int bucket);

struct SensorConfig {
    std::size_t grid = 12;      ///< cells per side
    double range = 48.0;        ///< forward coverage in metres
    double lateral = 12.0;      ///< half lateral coverage in metres
    double corridor = 2.6;      ///< half-width of the ego lane corridor
    double noise_sigma = 0.06;  ///< additive sensor noise
};

/// Render the (2, grid, grid) sensor tensor for the ego pose: channel 0 is
/// vehicle occupancy, channel 1 a fixed forward-distance ramp that gives the
/// (translation-invariant) convolutions an absolute position reference.
[[nodiscard]] ml::Tensor render_grid(const Obb& ego, std::span<const Obb> vehicles,
                                     const SensorConfig& config, util::Rng& rng);

/// Ground-truth forward distance to the nearest vehicle inside the ego-lane
/// corridor (bumper to bumper); +inf when none within range.
[[nodiscard]] double ground_truth_distance(const Obb& ego, std::span<const Obb> vehicles,
                                           const SensorConfig& config);

/// Labelled dataset of synthetic sensor scenes for detector training.
[[nodiscard]] ml::Dataset make_detector_dataset(std::size_t count,
                                                const SensorConfig& config,
                                                std::uint64_t seed);

}  // namespace mvreju::av
