#pragma once

// Localization substrate — the GNSS + dead-reckoning half of the OpenCDA
// perception/localization pipeline the paper builds on (Section VII-A lists
// GNSS among the sensors). A noisy satellite fix arrives at a low rate (and
// occasionally drops out); between fixes the ego's pose is propagated by the
// kinematic bicycle model, and a complementary filter blends the two.

#include <cstdint>

#include "mvreju/av/geometry.hpp"
#include "mvreju/util/rng.hpp"

namespace mvreju::av {

struct GnssConfig {
    double position_sigma = 0.8;  ///< metres, per axis
    double heading_sigma = 0.03;  ///< radians
    double dropout_probability = 0.05;  ///< chance a fix is unavailable
};

struct GnssFix {
    Vec2 position;
    double heading = 0.0;
    bool valid = false;
};

/// Sample a (noisy, possibly missing) GNSS fix for a true pose.
[[nodiscard]] GnssFix sample_gnss(Vec2 true_position, double true_heading,
                                  const GnssConfig& config, util::Rng& rng);

/// Complementary filter: dead reckoning with the bicycle model, blended
/// towards GNSS fixes with gain `blend` per correction.
class Localizer {
public:
    Localizer(Vec2 initial_position, double initial_heading, double blend = 0.2,
              double wheelbase = 2.8);

    /// Propagate the estimate by one control step (same inputs the vehicle
    /// received: commanded speed after integration, steering angle).
    void predict(double speed, double steer, double dt);

    /// Blend a GNSS fix into the estimate; invalid fixes are ignored.
    void correct(const GnssFix& fix);

    [[nodiscard]] Vec2 position() const noexcept { return position_; }
    [[nodiscard]] double heading() const noexcept { return heading_; }

    /// Estimation error against a reference pose (for tests/telemetry).
    [[nodiscard]] double position_error(Vec2 reference) const noexcept {
        return (position_ - reference).norm();
    }

private:
    Vec2 position_;
    double heading_;
    double blend_;
    double wheelbase_;
};

}  // namespace mvreju::av
