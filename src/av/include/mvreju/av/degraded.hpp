#pragma once

// Degraded-mode policy ladder driven by the input-trust score (trust.hpp)
// and voter health. Mirrors the graceful-degradation ladders of published
// AV safety cases: as confidence in perception falls the system first drops
// persistently disagreeing versions, then trades resolution for robustness,
// and finally executes a minimal-risk stop rather than act on inputs it
// cannot trust.
//
// Escalation is immediate (one bad reading can warrant caution); recovery is
// hysteretic (reliability must hold above the threshold plus a margin for a
// dwell period) so the ladder never oscillates at a threshold boundary.

#include <cstddef>
#include <vector>

#include "mvreju/ml/tensor.hpp"

namespace mvreju::av {

/// Policy rungs, ordered by severity.
enum class DegradedMode {
    normal = 0,
    drop_versions = 1,        ///< exclude persistently dissenting versions
    reduced_resolution = 2,   ///< denoise input by 2x2 mean pooling
    minimal_risk_stop = 3,    ///< skip inference, brake to a stop
};

[[nodiscard]] const char* degraded_mode_name(DegradedMode mode) noexcept;

struct DegradedPolicyConfig {
    // Reliability thresholds for entering each rung.
    double drop_below = 0.8;
    double reduce_below = 0.5;
    double stop_below = 0.25;

    // Hysteresis: de-escalate one rung only after reliability has held above
    // the rung's entry threshold plus this margin for `recover_dwell`
    // consecutive frames.
    double recover_margin = 0.1;
    int recover_dwell = 10;

    // Per-version dissent tracking: EWMA of "this version disagreed with the
    // decided vote", with a version dropped while its EWMA exceeds the
    // threshold (only applied at rung >= drop_versions).
    double dissent_alpha = 0.15;
    double dissent_drop = 0.6;
};

/// Stateful policy ladder for one perception stream.
class DegradedModeController {
public:
    DegradedModeController(int versions, DegradedPolicyConfig config = {});

    /// Advance the ladder one frame from the current reliability score.
    /// Returns the mode to apply to *this* frame.
    DegradedMode update(double reliability);

    /// Record each version's agreement with a decided vote (flags from
    /// core::dissenting_proposals). Non-decided frames record nothing: with
    /// no majority there is no reference to dissent from.
    void observe_votes(const std::vector<bool>& dissented);

    /// True when version m should be excluded from voting this frame.
    [[nodiscard]] bool version_dropped(int m) const;

    [[nodiscard]] DegradedMode mode() const noexcept { return mode_; }
    [[nodiscard]] double dissent(int m) const;
    [[nodiscard]] int transitions() const noexcept { return transitions_; }

private:
    DegradedPolicyConfig config_;
    DegradedMode mode_ = DegradedMode::normal;
    std::vector<double> dissent_;
    int recovery_frames_ = 0;
    int transitions_ = 0;
};

/// 2x2 mean-pool then nearest-neighbour upsample back to the input shape:
/// the reduced-resolution rung. Averaging four pixels suppresses impulse
/// noise at the cost of spatial detail — the classic robustness/fidelity
/// trade of degraded operation. Odd trailing rows/columns pool over the
/// smaller remaining window.
[[nodiscard]] ml::Tensor reduced_resolution(const ml::Tensor& frame);

}  // namespace mvreju::av
