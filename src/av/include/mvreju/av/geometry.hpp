#pragma once

// 2-D geometry primitives for the driving simulator: vectors, oriented
// bounding boxes, and the separating-axis overlap test used for collision
// checking.

#include <cmath>

namespace mvreju::av {

struct Vec2 {
    double x = 0.0;
    double y = 0.0;

    constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator*(double k) const noexcept { return {x * k, y * k}; }
    [[nodiscard]] constexpr double dot(Vec2 o) const noexcept { return x * o.x + y * o.y; }
    [[nodiscard]] double norm() const noexcept { return std::hypot(x, y); }
    [[nodiscard]] Vec2 normalized() const noexcept {
        const double n = norm();
        return n > 0.0 ? Vec2{x / n, y / n} : Vec2{1.0, 0.0};
    }
    /// Perpendicular (rotated +90 degrees).
    [[nodiscard]] constexpr Vec2 perp() const noexcept { return {-y, x}; }
    friend constexpr bool operator==(Vec2, Vec2) = default;
};

/// Unit direction for a heading angle (radians, 0 = +x, CCW positive).
[[nodiscard]] inline Vec2 heading_dir(double heading) noexcept {
    return {std::cos(heading), std::sin(heading)};
}

/// Wrap an angle to (-pi, pi].
[[nodiscard]] double wrap_angle(double angle) noexcept;

/// Oriented bounding box: centre, half-extents (along local x = heading,
/// local y = lateral) and heading.
struct Obb {
    Vec2 center;
    double half_length = 2.25;  ///< typical car: 4.5 m long
    double half_width = 0.95;   ///< 1.9 m wide
    double heading = 0.0;
};

/// Separating-axis overlap test for two OBBs.
[[nodiscard]] bool overlaps(const Obb& a, const Obb& b) noexcept;

/// Transform a world point into the frame of an OBB (x forward, y left).
[[nodiscard]] Vec2 to_local(const Obb& frame, Vec2 world) noexcept;

}  // namespace mvreju::av
