#pragma once

// Vehicles: the ego uses a kinematic bicycle model driven by the controller;
// NPC traffic follows a route with a scripted stop-and-go speed profile —
// the rear-end hazard the perception system must detect in time.

#include <cstdint>

#include "mvreju/av/geometry.hpp"
#include "mvreju/av/route.hpp"
#include "mvreju/util/rng.hpp"

namespace mvreju::av {

/// Kinematic bicycle model.
class EgoVehicle {
public:
    EgoVehicle(Vec2 position, double heading, double wheelbase = 2.8);

    /// Integrate one step with commanded acceleration (m/s^2) and steering
    /// angle (rad). Speed never goes negative (no reverse).
    void step(double accel, double steer, double dt);

    [[nodiscard]] Vec2 position() const noexcept { return position_; }
    [[nodiscard]] double heading() const noexcept { return heading_; }
    [[nodiscard]] double speed() const noexcept { return speed_; }
    void set_speed(double speed) noexcept { speed_ = speed < 0.0 ? 0.0 : speed; }

    [[nodiscard]] Obb obb() const noexcept {
        return {position_, 2.25, 0.95, heading_};
    }

private:
    Vec2 position_;
    double heading_;
    double speed_ = 0.0;
    double wheelbase_;
};

/// Stop-and-go profile parameters for an NPC.
struct NpcProfile {
    double cruise_speed = 7.0;   ///< m/s when moving
    double cruise_time = 6.0;    ///< seconds between braking episodes
    double stop_time = 3.0;      ///< dwell at standstill
    double brake = 3.0;          ///< m/s^2
    double accel = 2.0;          ///< m/s^2
};

/// Route-following lead vehicle with a periodic stop-and-go cycle.
class NpcVehicle {
public:
    NpcVehicle(const Route& route, double initial_s, NpcProfile profile,
               std::uint64_t seed);

    void step(double dt);

    [[nodiscard]] double s() const noexcept { return s_; }
    [[nodiscard]] double speed() const noexcept { return speed_; }
    [[nodiscard]] Obb obb() const;

private:
    enum class Phase { cruise, braking, stopped, accelerating };

    const Route* route_;
    double s_;
    double speed_;
    NpcProfile profile_;
    Phase phase_ = Phase::cruise;
    double phase_left_;
    util::Rng rng_;
};

}  // namespace mvreju::av
