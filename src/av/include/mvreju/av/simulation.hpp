#pragma once

// The closed-loop driving scenario of Section VII: an ego vehicle follows a
// route behind stop-and-go traffic, perceiving through a single- or
// three-version detector system whose modules degrade under the Section
// VII-A fault process and (optionally) recover through time-triggered
// rejuvenation. Reported metrics mirror Tables VI-VIII: collision rate
// (collision frames / total frames), first-collision frame, skipped frames
// and perception timing.

#include "mvreju/av/degraded.hpp"
#include "mvreju/av/localization.hpp"
#include "mvreju/av/perception.hpp"
#include "mvreju/av/planner.hpp"
#include "mvreju/av/route.hpp"
#include "mvreju/av/scenario.hpp"
#include "mvreju/av/trust.hpp"
#include "mvreju/core/health.hpp"
#include "mvreju/core/voter.hpp"

namespace mvreju::av {

struct ScenarioConfig {
    double dt = 0.05;        ///< 20 simulated frames per second
    double horizon = 33.0;   ///< seconds (a run is ~30 s in the paper)
    int versions = 3;        ///< 1 or 3 perception versions
    bool rejuvenation = true;

    // Fault-process parameters of Section VII-A.
    double mttc = 8.0;                  ///< 1/lambda_c
    double mttf = 16.0;                 ///< 1/lambda
    double reactive_duration = 0.5;     ///< 1/mu
    double proactive_duration = 0.5;    ///< 1/mu_r
    double rejuvenation_interval = 3.0; ///< 1/gamma (Table VII sweeps this)

    core::VictimPolicy victim_policy = core::VictimPolicy::two_thirds_compromised;
    core::VotingScheme voting = core::VotingScheme::majority;

    /// Steer from a GNSS + dead-reckoning estimate instead of ground-truth
    /// pose (the OpenCDA localization stage). Off by default: the paper's
    /// case study evaluates the perception system.
    bool use_localization = false;
    GnssConfig gnss;
    double gnss_period = 1.0;  ///< seconds between fixes
    int npc_count = 2;
    SensorConfig sensor;
    PlannerConfig planner;
    std::uint64_t seed = 1;

    /// Optional sensor-failure scenario (scenario.hpp) replayed ahead of
    /// perception; its weight-fault events are delivered to the health
    /// engine / detector weights as they fall due. Null: clean sensor.
    /// The replay stream is derived from `seed`, so a (scenario, seed) pair
    /// is bit-identical regardless of thread count.
    const Scenario* scenario = nullptr;

    /// Run the input-trust monitor and degraded-mode policy ladder
    /// (trust.hpp / degraded.hpp). Off by default: the paper's case study
    /// evaluates the bare multi-version system.
    bool trust_policy = false;
    TrustConfig trust;
    DegradedPolicyConfig policy;
};

struct RunMetrics {
    int total_frames = 0;
    int collision_frames = 0;
    int skipped_frames = 0;    ///< voter diverged: command held
    int no_output_frames = 0;  ///< no functional module at all
    int decided_frames = 0;
    /// Decided frames whose voted bucket was optimistic by >= 2 buckets
    /// compared to ground truth (the dangerous outcome of agreeing faults).
    int unsafe_decided_frames = 0;
    int first_collision_frame = -1;  ///< -1: no collision
    double route_completed = 0.0;    ///< fraction of the route covered

    double perception_wall_seconds = 0.0;  ///< time spent in inference+vote
    std::size_t inferences = 0;            ///< total model invocations

    // Scenario / degraded-mode accounting (zero when trust_policy is off).
    int sensor_fault_frames = 0;  ///< frames the input monitor flagged non-ok
    int stop_frames = 0;          ///< frames spent in minimal-risk stop
    int reduced_frames = 0;       ///< frames inferred at reduced resolution
    std::size_t dropped_proposals = 0;  ///< proposals excluded by drop_versions
    int degraded_transitions = 0;       ///< policy-ladder mode changes
    double min_trust = 1.0;             ///< lowest reliability score seen
    double mean_trust = 1.0;            ///< mean reliability over the run

    core::HealthStats health_stats;

    [[nodiscard]] bool collided() const noexcept { return first_collision_frame >= 0; }
    [[nodiscard]] double collision_rate() const noexcept {
        return total_frames == 0
                   ? 0.0
                   : static_cast<double>(collision_frames) / total_frames;
    }
    [[nodiscard]] double skip_rate() const noexcept {
        return total_frames == 0
                   ? 0.0
                   : static_cast<double>(skipped_frames + no_output_frames) / total_frames;
    }
};

/// Run one scenario on `route` with the given detector versions.
[[nodiscard]] RunMetrics run_scenario(const Route& route, const DetectorSet& detectors,
                                      const ScenarioConfig& config);

}  // namespace mvreju::av
