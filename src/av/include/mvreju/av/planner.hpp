#pragma once

// Planning and control: adaptive-cruise speed planning from the voted
// perception output (holding the last command on a skipped frame, per the
// paper's voting rules), proportional speed control, and pure-pursuit
// steering along the route.

#include <optional>

#include "mvreju/av/route.hpp"
#include "mvreju/av/vehicle.hpp"

namespace mvreju::av {

struct PlannerConfig {
    double max_accel = 1.3;      ///< m/s^2 (smooth urban ACC)
    double max_brake = 7.0;      ///< m/s^2 (emergency)
    double comfort_brake = 3.0;  ///< m/s^2 used for stopping-distance planning
    double safe_gap = 6.0;       ///< metres kept to the lead vehicle
    double time_gap = 1.5;       ///< seconds of headway
    double speed_kp = 1.2;       ///< proportional gain when accelerating
    double brake_kp = 4.0;       ///< proportional gain when slowing (ACC brakes
                                 ///< harder than it accelerates)
    double max_steer = 0.6;      ///< rad
    double lookahead_base = 4.0; ///< pure-pursuit lookahead (m) at standstill
    double lookahead_gain = 0.9; ///< extra lookahead per m/s
    double lat_accel_max = 2.2;  ///< m/s^2 comfort limit for cornering speed
    double curve_preview = 28.0; ///< metres of route scanned ahead for curvature
    /// Safe-skip threshold (Section IV of the paper, after Matovic et al.):
    /// on a skipped frame the previous acceleration command is simply held
    /// ("the AV does not update its driving properties"); once the skip run
    /// exceeds this threshold the held command is additionally capped at
    /// zero — the vehicle may coast but no longer blindly accelerate.
    /// 0 disables the cap.
    int skip_threshold = 8;
    /// Second escalation stage: past this many consecutive skips the vehicle
    /// brakes gently (perception has been silent for a long time).
    /// 0 disables the stage (coast indefinitely).
    int stale_threshold = 0;
    double stale_brake = 1.8;  ///< m/s^2 during the braking stage
};

/// Longitudinal planner. Perception updates arrive as the voted distance
/// bucket; on a skipped/no-output frame the previous perception is held
/// ("the AV does not update its driving properties", Section VII-A).
class Planner {
public:
    explicit Planner(PlannerConfig config = {});

    /// Feed the voter outcome for this frame. `bucket` is the decided
    /// distance bucket, or std::nullopt when the vote was skipped or empty.
    void update_perception(std::optional<int> bucket);

    /// Allowed speed from the current (held) perception and the route limit.
    [[nodiscard]] double target_speed(double route_limit) const;

    /// Commanded acceleration toward the target speed. On skipped frames the
    /// previous command is held (capped at zero past the skip threshold).
    [[nodiscard]] double accel_command(double current_speed, double route_limit) const;

    [[nodiscard]] int perceived_bucket() const noexcept { return perceived_bucket_; }
    [[nodiscard]] int consecutive_skips() const noexcept { return consecutive_skips_; }
    [[nodiscard]] bool perception_stale() const noexcept {
        return config_.skip_threshold > 0 && consecutive_skips_ >= config_.skip_threshold;
    }
    [[nodiscard]] const PlannerConfig& config() const noexcept { return config_; }

private:
    PlannerConfig config_;
    int perceived_bucket_ = 0;   ///< held across skipped frames; 0 = clear
    int consecutive_skips_ = 0;  ///< run length of skipped/no-output frames
    mutable double held_accel_ = 0.0;  ///< last commanded acceleration
};

/// Pure-pursuit steering command for the ego toward the route. `s_hint` is
/// the previous arc-length projection (returned updated).
[[nodiscard]] double pure_pursuit_steer(const EgoVehicle& ego, const Route& route,
                                        double& s_hint, const PlannerConfig& config);

/// Pose-based variant: steer from an *estimated* pose (e.g. the localization
/// filter's output) rather than ground truth.
[[nodiscard]] double pure_pursuit_steer(Vec2 position, double heading, double speed,
                                        const Route& route, double& s_hint,
                                        const PlannerConfig& config);

/// Speed limit from the route's legal limit and the curvature of the next
/// `curve_preview` metres (comfortable lateral acceleration).
[[nodiscard]] double curvature_limited_speed(const Route& route, double s,
                                             const PlannerConfig& config);

}  // namespace mvreju::av
