#pragma once

// Rule-based input-trust monitor for the perception sensor stream.
//
// Production vision pipelines guard their models with cheap frame-statistics
// monitors (frozen-frame, blank-frame and corruption detectors) because a
// model fed garbage fails silently — all N diverse versions agree on the
// same wrong answer when the *input* is wrong, defeating voting entirely.
// This monitor classifies each frame from four statistics and integrates the
// verdicts into a continuous reliability score in [0, 1] that the
// degraded-mode controller (degraded.hpp) thresholds into its policy ladder.
//
// Signals, against the sensor contract of sensor.cpp:
//  - frame delta: mean |pixel difference| vs the previous frame. The clean
//    sensor adds sigma≈0.06 Gaussian dither, so consecutive frames always
//    differ by ≈0.05-0.08; a delta near zero means a frozen pipeline.
//  - luma: mean pixel value. Near-zero means a blank (dead) sensor.
//  - entropy: 8-bin histogram entropy. A blank frame at any level has ≈0.
//  - ramp deviation: channel 1 is a deterministic forward-distance ramp
//    (row value 1 - row/n); mean |observed - expected| is a reference-
//    channel integrity check that impulse noise, occlusion bands and gain
//    errors all violate.
//  - impulse fraction: pixels >= 0.98 across the frame; salt noise pushes
//    this far above the clean occupancy level.

#include <cstddef>

#include "mvreju/ml/tensor.hpp"

namespace mvreju::av {

/// Per-frame verdict of the input monitor.
enum class SensorStatus { ok, frozen, blank, corrupted };

[[nodiscard]] const char* sensor_status_name(SensorStatus status) noexcept;

struct TrustConfig {
    // Classification thresholds (see header comment for calibration).
    double freeze_delta = 1e-3;   ///< frame delta below => frozen
    double blank_luma = 0.12;     ///< mean below => blank
    double blank_entropy = 0.2;   ///< entropy (nats) below => blank
    double ramp_deviation = 0.08; ///< reference-channel error above => corrupt
    double impulse_fraction = 0.10;  ///< saturated-pixel share above => corrupt

    // Reliability dynamics (per second). Decay is much faster than recovery:
    // trust is lost in a few frames and regained over many — the asymmetry
    // that makes the policy ladder react before a fault propagates.
    double fault_decay = 6.0;     ///< while the frame is not ok
    double vote_decay = 0.8;      ///< while the voter skips / has no output
    double recovery = 0.35;       ///< while the frame is ok
};

/// Frame statistics computed by TrustMonitor::update (exposed for tests
/// and telemetry).
struct FrameStats {
    double delta = 0.0;      ///< mean |pixel - previous pixel|
    double luma = 0.0;       ///< mean pixel value
    double entropy = 0.0;    ///< 8-bin histogram entropy, nats
    double ramp_dev = 0.0;   ///< mean |channel 1 - expected ramp|
    double impulse = 0.0;    ///< fraction of pixels >= 0.98
};

/// Stateful per-stream trust monitor. Feed every frame in order via
/// `update`, then voter outcomes via `observe_vote`; read `reliability`.
class TrustMonitor {
public:
    explicit TrustMonitor(TrustConfig config = {});

    /// Classify one frame and integrate the reliability score over dt
    /// seconds. Frames must arrive in replay order.
    SensorStatus update(const ml::Tensor& frame, double dt);

    /// Fold the voter outcome for the same frame into the score: skipped or
    /// no-output frames erode trust even when the input itself looks fine
    /// (weight faults manifest here, not in frame statistics).
    void observe_vote(bool decided, double dt);

    [[nodiscard]] double reliability() const noexcept { return reliability_; }
    [[nodiscard]] SensorStatus status() const noexcept { return status_; }
    [[nodiscard]] const FrameStats& stats() const noexcept { return stats_; }
    [[nodiscard]] const TrustConfig& config() const noexcept { return config_; }

    /// Statistics for one frame without touching monitor state.
    [[nodiscard]] static FrameStats compute_stats(const ml::Tensor& frame,
                                                  const ml::Tensor* previous);

private:
    TrustConfig config_;
    double reliability_ = 1.0;
    SensorStatus status_ = SensorStatus::ok;
    FrameStats stats_;
    ml::Tensor previous_;
    bool has_previous_ = false;
};

}  // namespace mvreju::av
