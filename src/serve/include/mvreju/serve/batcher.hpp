#pragma once

// Cross-stream dynamic batcher: the serving layer's throughput engine.
// Sessions submit single samples destined for a (shared, const) model; the
// batcher stages them per (model, kernel backend) pair and flushes a staged
// batch through one Sequential::logits_batch call either when it reaches
// max_batch (full flush, inside submit) or when its oldest sample has
// waited max_delay_us (deadline flush, driven by the owner's clock through
// flush_due). Keying on the backend as well as the model is load-bearing:
// an int8 replica shares its float32 sibling's Sequential and differs only
// in backend, and coalescing the two into one flush would run half the
// batch through the wrong arithmetic.
//
// Correctness contract: logits_batch guarantees every sample's logits are
// bit-identical however the samples are batched and whatever num_threads is
// used, and the per-row argmax below replicates ml::argmax's first-max
// tie-break exactly — so a label produced through any batching equals the
// label of model->predict(sample). tests/serve_batcher_test.cpp holds this
// bit-exactly; the serve benchmark gates on it across a whole fleet.
//
// The batcher is passive and clock-agnostic: it never reads a clock, the
// caller stamps submissions with `now_us` (virtual time in the deterministic
// fleet, steady time in the socket server) and decides when to call
// flush_due. Single-owner, not thread-safe — it lives on the service thread.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "mvreju/ml/model.hpp"
#include "mvreju/ml/workspace.hpp"

namespace mvreju::serve {

/// Identity of one flush: which flush it was, how many samples it carried,
/// and where its stage boundaries fell. Completions receive it so a
/// virtual-time owner can cost the batch (service time grows with size)
/// exactly once per flush, and so the owner can stamp each frame's
/// formed/infer trace points without the batcher owning a clock.
struct BatchStamp {
    std::uint64_t seq = 0;   ///< flush sequence number, 1-based
    std::uint32_t size = 0;  ///< samples in the flushed batch
    /// Caller time at which the flush was triggered (the `now_us` of the
    /// submit or flush_due/flush_all call that caused it).
    std::uint64_t formed_us = 0;
    /// Inference interval, read from Options::now_fn around the
    /// logits_batch call; both equal formed_us when no clock is provided
    /// (the virtual-time fleet substitutes its own service model).
    std::uint64_t infer_start_us = 0;
    std::uint64_t infer_end_us = 0;
};

class DynamicBatcher {
public:
    /// Called once per submitted sample, during the flush that carried it,
    /// in submission order within the batch.
    using Completion = std::function<void(int label, const BatchStamp& stamp)>;

    struct Options {
        int max_batch = 64;               ///< full-flush threshold
        std::uint64_t max_delay_us = 2000;  ///< oldest-sample wait bound
        std::size_t num_threads = 1;      ///< logits_batch parallelism
        std::vector<std::size_t> input_shape = {3, 16, 16};  ///< per-sample
        /// Optional clock for the BatchStamp infer interval (the batcher
        /// stays clock-agnostic on the control path: deadlines still come
        /// from the caller's `now_us` stamps). Null keeps the stamp's
        /// infer boundaries at formed_us — what the virtual-time fleet
        /// wants, since it costs inference with its own service model.
        std::function<std::uint64_t()> now_fn;
    };

    explicit DynamicBatcher(Options options);

    /// Stage one sample (copied) for `model` run through `backend` (null
    /// resolves to the model's own bound backend). Queues are keyed on the
    /// (model, backend) pair — samples for the same weights but different
    /// backends never share a flush. Flushes immediately when the pair's
    /// queue reaches max_batch.
    void submit(const ml::Sequential* model, const float* sample,
                std::uint64_t now_us, Completion done,
                const num::KernelBackend* backend = nullptr);

    /// Earliest deadline over all staged queues (oldest submit time +
    /// max_delay_us); nullopt when nothing is staged. The owner sleeps no
    /// longer than this.
    [[nodiscard]] std::optional<std::uint64_t> next_deadline_us() const;

    /// Flush every queue whose deadline is <= now_us; returns samples
    /// completed.
    std::size_t flush_due(std::uint64_t now_us);

    /// Flush everything regardless of deadlines (shutdown, end of run);
    /// `now_us` only stamps the resulting batches' formed_us.
    std::size_t flush_all(std::uint64_t now_us = 0);

    [[nodiscard]] std::size_t pending() const noexcept { return pending_; }
    [[nodiscard]] std::size_t sample_size() const noexcept { return sample_size_; }
    [[nodiscard]] const Options& options() const noexcept { return options_; }

private:
    struct Queue {
        const ml::Sequential* model = nullptr;
        const num::KernelBackend* backend = nullptr;  ///< queue key, never null
        std::vector<float> staging;        ///< size() = count * sample_size
        std::vector<Completion> done;      ///< one per staged sample
        std::uint64_t oldest_us = 0;       ///< submit stamp of the first sample
    };

    Queue& queue_for(const ml::Sequential* model, const num::KernelBackend* backend);
    std::size_t flush_queue(Queue& queue, std::uint64_t formed_us);

    Options options_;
    std::size_t sample_size_;
    std::vector<Queue> queues_;  ///< linear scan: a pool has a handful of models
    std::size_t pending_ = 0;
    std::uint64_t flush_seq_ = 0;
    ml::Workspace ws_;
    /// Per-chunk workspaces for multi-threaded flushes. Indexed by chunk,
    /// not by thread: each chunk is executed exactly once, so its workspace
    /// is never shared even under work stealing.
    std::vector<ml::Workspace> chunk_ws_;
};

}  // namespace mvreju::serve
