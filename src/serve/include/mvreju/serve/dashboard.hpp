#pragma once

// Fleet dashboard: parse a /fleet telemetry document (the JSON rendered by
// serve::FleetStats::to_json and served by obs::Exporter) back into
// structured form and render the text dashboard the tools/fleet_top CLI
// shows. Mirrors the postmortem tool/library split: everything testable
// lives here — the rendering contract is golden-tested
// (tests/serve_dashboard_test.cpp) against a seeded virtual-time fleet —
// and the CLI is a thin main() over these functions plus an HTTP poll loop.

#include <cstdint>
#include <string>
#include <vector>

namespace mvreju::serve::dashboard {

/// One pipeline stage's fleet-merged window, plus its breach attribution.
struct StageRow {
    std::string name;
    std::uint64_t count = 0;
    double mean_ms = 0.0;
    double p50_ms = 0.0;
    double p90_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
    std::uint64_t breaches = 0;  ///< SLO breaches attributed to this stage
};

/// One stage tag's CPU share from the optional "cpu_by_stage" block (only
/// present when the serving process ran with the sampling profiler on).
struct CpuRow {
    std::string stage;  ///< profiler tag ("parse", "infer", ..., "untagged")
    std::uint64_t samples = 0;
    double fraction = 0.0;  ///< share of all profile samples, in [0, 1]
};

/// One entry of the worst-streams ranking.
struct StreamRow {
    std::uint32_t stream = 0;
    double reliability = 1.0;
    std::uint64_t frames = 0;
    std::uint64_t breaches = 0;
    std::uint64_t dropped = 0;
    double p99_total_ms = 0.0;
};

/// A parsed "mvreju.fleet.v1" document.
struct FleetDoc {
    std::string schema;
    std::string backend;  ///< kernel backend name; empty in older documents
    std::uint64_t now_us = 0;
    std::uint64_t window_us = 0;
    std::uint64_t streams = 0;
    std::uint64_t frames = 0;
    std::uint64_t decided = 0;
    std::uint64_t skipped = 0;
    std::uint64_t no_output = 0;
    std::uint64_t shed = 0;
    std::uint64_t error = 0;
    std::uint64_t degraded = 0;
    std::uint64_t slo_breaches = 0;
    std::vector<StageRow> stages;      ///< document order (pipeline order)
    std::vector<CpuRow> cpu_by_stage;  ///< empty when profiling was off
    std::vector<StreamRow> worst;      ///< ranking order
};

/// Parse a /fleet document; throws std::runtime_error on malformed input
/// or a schema other than "mvreju.fleet.v1".
[[nodiscard]] FleetDoc parse(const std::string& json_text);

/// Render the dashboard as deterministic plain text (fixed-width columns,
/// no colour, no wall-clock) — the fleet_top screen body and the golden
/// test's subject.
[[nodiscard]] std::string render(const FleetDoc& doc);

}  // namespace mvreju::serve::dashboard
