#pragma once

// The fleet-scale serving front end: a serve::Server accepts any number of
// client connections (one perception stream each) on a net::EventLoop,
// parses length-prefixed request frames, routes every functional version's
// inference through the shared cross-stream DynamicBatcher, and answers
// with the voter's decision. One service thread owns everything — loop,
// sessions, batcher, overload control — so there is no locking on the
// serving path; parallelism comes from logits_batch fanning a coalesced
// batch across worker threads.
//
// Admission and overload policy:
//  - beyond max_streams, new connections get one `error` response and are
//    closed (admission refusal);
//  - when the SLO breach rate trips the OverloadControl, frames are served
//    degraded — the primary version only, no cross-check — and each one
//    leaves a load_shed flight event and a serve.shed.degraded count;
//  - beyond max_inflight staged frames, requests are answered `shed`
//    without running inference at all (dropped).
//
// The deterministic twin of this class is synthetic.hpp's fleet; the socket
// server trades its virtual clock for the steady clock and its outcome hash
// for live clients, but shares every policy component.

#include <cstdint>
#include <memory>
#include <string>

#include "mvreju/core/health.hpp"
#include "mvreju/core/voter.hpp"
#include "mvreju/serve/overload.hpp"
#include "mvreju/serve/session.hpp"

namespace mvreju::serve {

class Server {
public:
    struct Options {
        std::string host = "127.0.0.1";
        int port = 0;  ///< 0 picks an ephemeral port (see port())
        int backlog = 64;
        int max_streams = 1024;

        int batch_max = 64;
        std::uint64_t batch_delay_us = 2000;
        std::size_t infer_threads = 1;

        double slo_budget_ms = 50.0;
        bool shedding = true;
        OverloadControl::Options overload;
        std::size_t max_inflight = 4096;

        int tick_ms = 20;  ///< loop wake cadence when no batch deadline is due

        /// Fold every finished frame into serve::FleetStats and push the
        /// rendered /fleet document plus the aggregated health report to
        /// obs::Exporter::global() (no-op unless an exporter is serving).
        bool publish_telemetry = true;
        /// Minimum spacing between exporter pushes.
        std::uint64_t publish_interval_us = 250'000;

        core::HealthEngineConfig health;  ///< per-stream seed base
        core::VotingScheme scheme = core::VotingScheme::majority;
    };

    struct Stats {
        std::uint64_t frames = 0;
        std::uint64_t decided = 0;
        std::uint64_t skipped = 0;
        std::uint64_t no_output = 0;
        std::uint64_t degraded = 0;
        std::uint64_t dropped = 0;
        std::uint64_t slo_breaches = 0;
        std::uint64_t protocol_errors = 0;
        std::uint64_t admission_refusals = 0;
        std::uint64_t connections = 0;  ///< accepted (admitted) in total
        std::size_t active_streams = 0;
    };

    /// `set` must outlive the server; it is shared const across streams.
    Server(const ModelSet& set, const Options& options);
    ~Server();
    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Bind and start the service thread. False (with a reason in *error)
    /// when already running or the socket cannot be bound.
    bool start(std::string* error = nullptr);
    /// Stop the service thread and close every connection. Idempotent.
    void stop();

    [[nodiscard]] bool running() const noexcept;
    /// The actually bound port; 0 when not running.
    [[nodiscard]] int port() const noexcept;

    [[nodiscard]] Stats stats() const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace mvreju::serve
