#pragma once

// Admission control for the serving layer: a breach-rate window with
// hysteresis. Every completed frame reports whether it breached its SLO
// budget; when the breach fraction over the last `window` frames crosses
// the enter threshold the server goes into load shedding (degraded
// single-version responses), and it leaves only once the fraction falls
// below the (lower) exit threshold — the gap keeps the controller from
// flapping at the boundary. Purely arithmetic and clock-free, so the
// deterministic fleet and the socket server shed identically for identical
// latency sequences.

#include <cstddef>
#include <vector>

namespace mvreju::serve {

class OverloadControl {
public:
    struct Options {
        double enter_breach_fraction = 0.5;  ///< start shedding at/above this
        double exit_breach_fraction = 0.1;   ///< stop shedding at/below this
        int window = 64;                     ///< frames in the sliding window
    };

    explicit OverloadControl(const Options& options)
        : options_(options), ring_(static_cast<std::size_t>(
                                 options.window > 0 ? options.window : 1)) {}

    /// Record one completed frame's SLO verdict and update the shed state.
    void record(bool breached) {
        if (filled_ == ring_.size()) breaches_ -= ring_[head_];
        else ++filled_;
        ring_[head_] = breached ? 1 : 0;
        breaches_ += ring_[head_];
        head_ = (head_ + 1) % ring_.size();
        const double fraction = breach_fraction();
        if (!overloaded_) {
            // Enter only on at least half a window of evidence, so a couple
            // of slow warm-up frames cannot trip the shedder.
            if (filled_ * 2 >= ring_.size() &&
                fraction >= options_.enter_breach_fraction)
                overloaded_ = true;
        } else if (fraction <= options_.exit_breach_fraction) {
            overloaded_ = false;
        }
    }

    [[nodiscard]] bool overloaded() const noexcept { return overloaded_; }
    [[nodiscard]] double breach_fraction() const noexcept {
        return filled_ == 0 ? 0.0
                            : static_cast<double>(breaches_) /
                                  static_cast<double>(filled_);
    }

private:
    Options options_;
    std::vector<char> ring_;
    std::size_t head_ = 0;
    std::size_t filled_ = 0;
    int breaches_ = 0;
    bool overloaded_ = false;
};

}  // namespace mvreju::serve
