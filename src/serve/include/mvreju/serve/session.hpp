#pragma once

// Per-stream serving state over a shared model pool.
//
// The fleet-scale split: everything heavy (trained versions, their
// fault-injected compromised twins, the VersionPool behaviours that wrap
// them) is built once in a ModelSet and shared const across every stream;
// a Session is only the cheap per-stream state — a MultiVersionSystem with
// its own seeded health process, vote bookkeeping and frame counter. A
// thousand sessions are a thousand health processes over one set of weights.
//
// A Session exposes the split-phase frame API: begin_frame() yields the
// plan (which versions run, in which behaviour), the owner routes one
// inference per functional version through the cross-stream DynamicBatcher,
// and complete_frame() votes over the labels that come back. process() is
// the inline, unbatched reference path — bit-identical results by the
// logits_batch invariant, which the batcher tests pin down.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "mvreju/core/health.hpp"
#include "mvreju/core/system.hpp"
#include "mvreju/core/voter.hpp"
#include "mvreju/ml/model.hpp"
#include "mvreju/ml/tensor.hpp"

namespace mvreju::serve {

/// Pointer table into the shared models, indexed by version: the batcher
/// needs the raw Sequential *and* the kernel backend for a (version, health
/// state) pair. Versions may share one Sequential and differ only in
/// backend — the int8 replica runs version 0's float32 weights through the
/// quantized kernels — which is why the batcher keys its staging queues on
/// (model, backend), never on the model alone.
struct StreamModelPool {
    std::vector<const ml::Sequential*> healthy;
    std::vector<const ml::Sequential*> compromised;
    /// Kernel backend per version (applies to both health states).
    std::vector<const num::KernelBackend*> backends;

    [[nodiscard]] std::size_t size() const noexcept { return healthy.size(); }

    /// The model a version runs in a *functional* state.
    [[nodiscard]] const ml::Sequential* model_for(std::size_t m,
                                                  core::ModuleState s) const {
        return s == core::ModuleState::healthy ? healthy.at(m) : compromised.at(m);
    }

    /// The kernel backend version `m` dispatches through.
    [[nodiscard]] const num::KernelBackend& backend_for(std::size_t m) const {
        return *backends.at(m);
    }
};

/// The shared, immutable side of the serving layer: owns the version models
/// and their compromised twins, and derives both views every stream needs —
/// the behaviour pool for voting/reference inference and the pointer table
/// for batched inference. Build once, share by const reference.
struct ModelSet {
    using Pool = core::VersionPool<ml::Tensor, int>;

    std::vector<std::unique_ptr<ml::Sequential>> storage;
    StreamModelPool pointers;
    std::shared_ptr<const Pool> behaviours;
    /// Per-sample input shape, e.g. {3, 16, 16}.
    std::vector<std::size_t> input_shape;
    /// Name of the kernel backend the float32 versions are bound to.
    std::string backend_name = "scalar";

    /// Flat element count of one input sample (C*H*W).
    [[nodiscard]] std::size_t sample_size() const {
        return ml::Tensor::count(input_shape);
    }
};

struct ModelSetConfig {
    std::size_t channels = 3;
    std::size_t side = 16;
    int classes = 8;
    std::uint64_t seed = 38;  ///< init seeds: seed, seed+1, seed+2
    /// Kernel backend the float32 versions bind at load time; resolved via
    /// num::select_backend ("" → MVREJU_BACKEND env → scalar, with CPUID
    /// fallback). Unknown names throw.
    std::string backend;
    /// Register a fourth version that runs version 0's float32 weights
    /// through the int8 quantized kernels — arithmetic diversity joining
    /// the weight-diverse trio in the vote.
    bool int8_replica = false;
};

/// The paper's diverse trio (LeNet/AlexNet/ResNet stand-ins) with one
/// random-weight-injected compromised twin each. Deterministic under the
/// config seed; untrained — serving correctness is about consistency of the
/// pipeline, not accuracy.
[[nodiscard]] ModelSet make_model_set(const ModelSetConfig& config = {});

/// Outcome of one served frame, the session-level mirror of a ResponseFrame.
struct SessionResult {
    core::VoteKind kind = core::VoteKind::no_output;
    int label = -1;  ///< valid iff kind == decided
    int agreeing = 0;
    int functional_modules = 0;
};

class Session {
public:
    struct Options {
        core::HealthEngineConfig health;  ///< seed is the *base*; +stream_id
        core::VotingScheme scheme = core::VotingScheme::majority;
    };

    /// `set` must outlive the session (the Server/fleet owns it).
    Session(std::uint64_t stream_id, const ModelSet& set, const Options& options);

    [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

    /// Phase 1 (delegates to the core system): health snapshot + plan.
    [[nodiscard]] core::FramePlan begin_frame(double time) {
        return system_.begin_frame(time);
    }

    /// Phase 2: vote over one optional label per version.
    [[nodiscard]] SessionResult complete_frame(
        const core::FramePlan& plan, std::vector<std::optional<int>> proposals);

    /// The model version `m` runs this frame given its planned state; null
    /// when the version is not functional.
    [[nodiscard]] const ml::Sequential* model_for(std::size_t m,
                                                  core::ModuleState s) const {
        return core::is_functional(s) ? models_->model_for(m, s) : nullptr;
    }

    /// The kernel backend version `m` dispatches through (pairs with
    /// model_for to form the batcher's queue key).
    [[nodiscard]] const num::KernelBackend& backend_for(std::size_t m) const {
        return models_->backend_for(m);
    }

    /// Index of the primary version for the degraded (load-shedding) path:
    /// the lowest-indexed functional version, or -1 when none.
    [[nodiscard]] static int primary_version(const core::FramePlan& plan);

    /// Inline unbatched reference: begin_frame -> predict() per functional
    /// version -> complete_frame. Bit-identical to the batched path.
    [[nodiscard]] SessionResult process(double time, const ml::Tensor& input);

    [[nodiscard]] const core::HealthEngine& health() const noexcept {
        return system_.health();
    }

private:
    std::uint64_t id_;
    const StreamModelPool* models_;
    core::MultiVersionSystem<ml::Tensor, int> system_;
};

}  // namespace mvreju::serve
