#pragma once

// Per-frame stage trace for the serving layer: one monotonic microsecond
// timestamp per stage boundary, stamped as a frame moves rx -> queue ->
// batch-formation -> infer -> vote -> tx through FrameParser/Session/
// DynamicBatcher/Server (steady-clock time) or the synthetic fleet
// (virtual time, so traces are byte-deterministic under a seed).
//
// The derived per-stage durations feed three consumers: the WindowedDigest
// aggregation in serve::FleetStats (fleet percentiles per stage, breach
// stage attribution), the serve.stage.* histograms on /metrics, and the
// optional response annex of the frame protocol (a client that sets the
// trace flag gets its own frame's breakdown back on the wire).
//
// Stamping honours the compile-time kill switch: under -DMVREJU_OBS=OFF
// stamp() is an empty inline function the optimizer deletes, and every
// breakdown reads as zero.

#include <array>
#include <cstddef>
#include <cstdint>

namespace mvreju::serve {

/// Stage boundaries of one served frame, in pipeline order.
enum class TracePoint : std::uint8_t {
    rx = 0,       ///< request bytes complete on the wire / synthetic arrival
    enqueue,      ///< parsed + planned, submitted to the DynamicBatcher
    formed,       ///< the (last) batch carrying this frame flushed
    infer_start,  ///< inference engine started on that batch
    infer_end,    ///< inference engine finished
    vote,         ///< voter decided over the returned labels
    tx,           ///< response handed to the transport
    kCount,
};

/// Derived per-stage durations (interval between consecutive boundaries).
enum class Stage : std::uint8_t {
    parse = 0,  ///< rx -> enqueue: parse + health plan
    queue,      ///< enqueue -> formed: wait in the batcher staging queue
    dispatch,   ///< formed -> infer_start: wait for the inference engine
    infer,      ///< infer_start -> infer_end: model execution
    vote,       ///< infer_end -> vote: proposal collection + voting
    tx,         ///< vote -> tx: response serialisation / send
    total,      ///< rx -> tx
    kCount,
};

inline constexpr std::size_t kStageCount = static_cast<std::size_t>(Stage::kCount);

/// Stable lower-case stage names ("parse", "queue", ...), index = Stage.
[[nodiscard]] const char* stage_name(Stage stage) noexcept;

/// One frame's stage timestamps. Unstamped points read as 0; breakdown()
/// treats a missing boundary as a zero-length stage (e.g. a dropped frame
/// never reaches infer). Monotone stamping: a later stamp of the same
/// point wins, which is what a frame fanned out over several batches
/// needs — its formed/infer boundaries are those of the last batch that
/// carried one of its versions.
struct FrameTrace {
    std::array<std::uint64_t, static_cast<std::size_t>(TracePoint::kCount)> t_us{};

#ifdef MVREJU_OBS_DISABLED
    void stamp(TracePoint, std::uint64_t) noexcept {}
#else
    void stamp(TracePoint point, std::uint64_t now_us) noexcept {
        std::uint64_t& slot = t_us[static_cast<std::size_t>(point)];
        if (now_us > slot) slot = now_us;
    }
#endif

    [[nodiscard]] std::uint64_t at(TracePoint point) const noexcept {
        return t_us[static_cast<std::size_t>(point)];
    }

    /// Duration of one derived stage in microseconds; 0 when either
    /// boundary was never stamped or the boundaries are out of order.
    [[nodiscard]] std::uint64_t stage_us(Stage stage) const noexcept;

    /// Whether both boundaries of `stage` were stamped in order —
    /// distinguishes a genuinely zero-length stage (counted by the
    /// digests) from one the frame never reached (not counted).
    [[nodiscard]] bool stage_bounded(Stage stage) const noexcept;

    /// All stages at once (order = Stage), the wire-annex payload.
    [[nodiscard]] std::array<std::uint32_t, kStageCount> breakdown_us() const noexcept;

    /// The stage that consumed the largest share of the frame's budget —
    /// the SLO-breach attribution (never Stage::total). Ties resolve to
    /// the earliest stage, deterministically.
    [[nodiscard]] Stage dominant_stage() const noexcept;
};

}  // namespace mvreju::serve
