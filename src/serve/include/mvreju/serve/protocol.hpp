#pragma once

// Wire protocol of the multi-stream serving layer: length-prefixed binary
// frames over a byte stream (TCP). Every frame is
//
//   u32 payload_length (little endian) | payload
//
// Request payload (client -> server), fixed size for a given model geometry:
//   u64 frame_id | f32 image[sample_size] [| u8 flags]
//
// The trailing flags byte is the protocol's version gate: a v1 client omits
// it and everything behaves exactly as before; a client that appends it may
// set kRequestFlagTrace to ask for the server-side stage breakdown of this
// frame. Unknown flag bits are a protocol error (strictness, below).
//
// Response payload (server -> client), 20 bytes:
//   u64 frame_id | u8 status | u8 degraded | u16 agreeing
//   | i32 label | u32 functional_modules
//   [| u32 stage_us[kStageCount]]        (only when the request asked for it)
//
// The stage annex carries the serve::Stage durations (parse, queue,
// dispatch, infer, vote, tx, total) in microseconds; a v1 client never sets
// the flag and never sees it.
//
// The parser is deliberately strict: a frame whose length is not exactly a
// request size for the configured geometry (with or without the flags
// byte), or above kMaxFrameBytes, is a protocol error — the server answers
// with one `error` response and closes the connection. Strictness is what
// makes the robustness guarantee simple: garbage can waste one connection,
// never a thread or the process (see tests/serve_protocol_test.cpp).

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mvreju/serve/trace.hpp"

namespace mvreju::serve {

/// Hard cap on a single frame's payload; anything larger is a protocol
/// error, so a hostile 4 GiB length prefix cannot balloon the rx buffer.
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

/// Request flag bits (the trailing optional flags byte). Any other bit is
/// a protocol error.
inline constexpr std::uint8_t kRequestFlagTrace = 0x01;

/// One perception request: a client-chosen frame id (echoed back, never
/// interpreted) and one flattened image in the pool's input geometry.
struct RequestFrame {
    std::uint64_t frame_id = 0;
    std::vector<float> image;
    /// Ask the server to append its per-stage latency annex to the
    /// response. Encoded as the optional flags byte, so a false value
    /// produces a byte-identical v1 request.
    bool want_trace = false;
};

enum class ResponseStatus : std::uint8_t {
    decided = 0,    ///< voter produced a label
    skipped = 1,    ///< functional versions disagreed: safe skip
    no_output = 2,  ///< no functional version this frame
    shed = 3,       ///< dropped at the overload hard cap; no inference ran
    error = 4,      ///< protocol violation or admission refusal; conn closes
};

struct ResponseFrame {
    std::uint64_t frame_id = 0;
    ResponseStatus status = ResponseStatus::error;
    /// True when overload forced the degraded single-version path: the label
    /// comes from the primary version alone, without the voter's cross-check.
    bool degraded = false;
    std::uint16_t agreeing = 0;
    std::int32_t label = -1;
    std::uint32_t functional_modules = 0;
    /// Stage annex (only on the wire when has_trace): per-stage durations in
    /// microseconds, order = serve::Stage.
    bool has_trace = false;
    std::array<std::uint32_t, kStageCount> stage_us{};
};

/// Serialized frame (length prefix included) for each direction.
[[nodiscard]] std::string encode_request(const RequestFrame& request);
[[nodiscard]] std::string encode_response(const ResponseFrame& response);

/// Decode one response *payload* (length prefix already stripped). Returns
/// false on a malformed payload.
[[nodiscard]] bool decode_response(const void* payload, std::size_t size,
                                   ResponseFrame& out);

/// Incremental request-stream parser for one connection. Feed it the rx
/// buffer after every read; it erases what it consumed and appends complete
/// requests. Once it reports an error it stays failed — the connection is
/// done.
class FrameParser {
public:
    /// `sample_size` is the flat element count of one image (C*H*W); the
    /// only accepted request payload length is 8 + 4 * sample_size.
    explicit FrameParser(std::size_t sample_size);

    /// Consume as many complete frames from `buffer` as are present.
    /// Returns false (and sets error()) on the first malformed frame;
    /// `buffer` then still holds the offending bytes.
    bool consume(std::string& buffer, std::vector<RequestFrame>& out);

    [[nodiscard]] bool failed() const noexcept { return !error_.empty(); }
    [[nodiscard]] const std::string& error() const noexcept { return error_; }

private:
    std::size_t sample_size_;
    std::string error_;
};

}  // namespace mvreju::serve
