#pragma once

// Fleet-wide serving telemetry: per-stream windowed stage digests folded
// into fleet percentiles, top-K worst-stream ranking, and per-stage SLO
// breach attribution — the read side of the FrameTrace stamps.
//
// The owner (run_fleet's driver loop or the socket Server's service thread)
// calls observe() once per finished frame with the frame's FrameTrace and
// outcome; to_json() renders the /fleet document for the exporter. Both
// take caller time (`now_us`) and never read a clock, so a seeded
// virtual-time fleet renders a byte-identical document on every rerun —
// the property tests/serve_fleet_stats_test.cpp pins.
//
// Single-owner like the batcher: observe() runs on the service thread only.
// The exporter never touches a FleetStats — the owner pushes rendered JSON
// via obs::Exporter::set_fleet_json(), keeping the HTTP thread out of
// engine state entirely.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mvreju/obs/windowed_digest.hpp"
#include "mvreju/serve/protocol.hpp"
#include "mvreju/serve/trace.hpp"

namespace mvreju::serve {

/// Everything FleetStats needs to know about one finished frame.
struct FrameObservation {
    std::uint32_t stream = 0;
    std::uint64_t frame = 0;
    FrameTrace trace;
    ResponseStatus status = ResponseStatus::decided;
    bool degraded = false;      ///< shed to the single-version path
    double latency_ms = 0.0;    ///< end-to-end latency (virtual or steady)
    double slo_budget_ms = 0.0; ///< 0 disables breach accounting for the frame
};

class FleetStats {
public:
    struct Options {
        /// Geometry of every per-stream per-stage digest. The serving
        /// default keeps a 4 s window in 1 s slots — wide enough to survive
        /// scrape jitter, small enough that streams * stages digests stay
        /// cheap.
        std::uint64_t slot_width_us = 1'000'000;
        std::size_t slots = 4;
        /// Streams listed in the worst_streams ranking.
        std::size_t top_k = 8;
        /// Reliability EWMA weight of the newest frame's quality sample.
        double ewma_alpha = 0.1;
        /// Mirror per-stage durations into obs::metrics() histograms
        /// ("serve.stage.<name>", ms) and emit breach_stage flight-recorder
        /// events. Off keeps observe() purely local — what a benchmark
        /// isolating digest cost wants.
        bool publish_metrics = true;
    };

    /// Per-stream rollup as reported in worst_streams.
    struct StreamSummary {
        std::uint32_t stream = 0;
        double reliability = 1.0;  ///< EWMA in [0, 1]; 1 = every frame clean
        std::uint64_t frames = 0;
        std::uint64_t breaches = 0;
        std::uint64_t dropped = 0;
        double p99_total_ms = 0.0;  ///< windowed p99 of the total stage
    };

    FleetStats() : FleetStats(Options{}) {}
    explicit FleetStats(const Options& options);

    /// Fold one finished frame in. `now_us` is the caller's clock at the
    /// moment of observation (virtual in the fleet, steady in the server)
    /// and keys the digests' time window.
    void observe(const FrameObservation& obs, std::uint64_t now_us);

    /// Fleet-merged windowed digest of one stage at `now_us`.
    [[nodiscard]] obs::HistogramValue stage_window(Stage stage,
                                                   std::uint64_t now_us) const;

    /// The `top_k` worst streams by (reliability asc, breaches desc,
    /// stream id asc) — the id tie-break keeps the ranking deterministic.
    [[nodiscard]] std::vector<StreamSummary> worst_streams(
        std::uint64_t now_us) const;

    /// SLO breaches attributed to each stage (dominant_stage of the
    /// breaching frame's trace; `total` never wins).
    [[nodiscard]] const std::array<std::uint64_t, kStageCount>& breach_by_stage()
        const noexcept {
        return breach_by_stage_;
    }

    /// Name of the kernel backend serving the fleet's float32 versions
    /// (ModelSet::backend_name); rendered into the /fleet document so
    /// fleet_top can show which arithmetic served each stream.
    void set_backend(std::string backend) { backend_ = std::move(backend); }
    [[nodiscard]] const std::string& backend() const noexcept { return backend_; }

    /// CPU share of one pipeline stage over the profiler's recent window.
    /// Mirrors obs::StageCpu without depending on the profiler — FleetStats
    /// stays a pure fold of pushed observations.
    struct StageCpuShare {
        std::string stage;
        std::uint64_t samples = 0;
        double fraction = 0.0;
    };

    /// Publish per-stage CPU attribution (from obs::Profiler::stage_cpu,
    /// pushed by the serving loop when profiling is on). Rendered as the
    /// optional "cpu_by_stage" block of the /fleet document; an empty vector
    /// (the default) omits the block, keeping unprofiled documents — and the
    /// byte-determinism golden tests — unchanged.
    void set_cpu_by_stage(std::vector<StageCpuShare> shares) {
        cpu_by_stage_ = std::move(shares);
    }
    [[nodiscard]] const std::vector<StageCpuShare>& cpu_by_stage() const noexcept {
        return cpu_by_stage_;
    }

    [[nodiscard]] std::uint64_t frames() const noexcept { return frames_; }
    [[nodiscard]] std::size_t stream_count() const noexcept {
        return streams_.size();
    }
    [[nodiscard]] const Options& options() const noexcept { return options_; }

    /// Render the /fleet JSON document ("mvreju.fleet.v1"). Deterministic:
    /// depends only on the observations, `now_us` and the build (a "build"
    /// {git_sha, build_type} block is always stamped in, so dumps and fleet
    /// snapshots correlate post-hoc; it is constant within one binary, so
    /// golden tests stay byte-stable). `include_meta` adds the full
    /// run-metadata block (compiler, hardware threads) on top.
    [[nodiscard]] std::string to_json(std::uint64_t now_us,
                                      bool include_meta = true) const;

    /// Drop all state; geometry and options persist.
    void clear();

private:
    struct StreamState {
        std::uint32_t stream = 0;
        std::vector<obs::WindowedDigest> stage;  ///< kStageCount digests
        double reliability = 1.0;
        std::uint64_t frames = 0;
        std::uint64_t breaches = 0;
        std::uint64_t dropped = 0;
    };

    StreamState& stream_for(std::uint32_t stream);
    [[nodiscard]] StreamSummary summarize(const StreamState& s,
                                          std::uint64_t now_us) const;

    Options options_;
    std::string backend_ = "scalar";
    std::vector<StageCpuShare> cpu_by_stage_;
    obs::WindowedDigest::Options digest_options_;
    std::vector<StreamState> streams_;  ///< sorted by stream id
    std::uint64_t frames_ = 0;
    std::array<std::uint64_t, static_cast<std::size_t>(ResponseStatus::error) + 1>
        by_status_{};
    std::uint64_t degraded_ = 0;
    std::uint64_t breaches_ = 0;
    std::array<std::uint64_t, kStageCount> breach_by_stage_{};
};

}  // namespace mvreju::serve
