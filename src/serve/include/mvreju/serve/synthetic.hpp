#pragma once

// Deterministic synthetic serving fleet: a discrete-event, virtual-time
// driver for the whole serving stack (sessions + cross-stream batcher +
// overload control) with no sockets and no wall clock in the control path.
//
// Seeded synthetic clients arrive on a virtual microsecond clock; the
// engine's service time is a *virtual* cost model (base + per-frame cost,
// queued behind the previous batch), so SLO breaches, shedding decisions
// and per-frame latencies are pure functions of the seed and options —
// two runs with the same options produce byte-identical results, including
// the output hash over every (stream, frame) outcome. The actual inference
// still runs for real, which is what makes the hash meaningful (labels are
// the models' labels) and what the wall_ms throughput measurement times.
//
// The same options with batch_max = 1 is the unbatched reference: by the
// logits_batch bit-identity invariant the output hash must be identical,
// and the ratio of the two wall times is the serving layer's speedup —
// both are gated in bench/bench_serve.cpp.

#include <cstdint>
#include <vector>

#include "mvreju/core/health.hpp"
#include "mvreju/core/voter.hpp"
#include "mvreju/serve/overload.hpp"
#include "mvreju/serve/session.hpp"

namespace mvreju::serve {

class FleetStats;

struct FleetOptions {
    int streams = 64;
    double frame_rate_hz = 30.0;   ///< per-stream arrival rate
    int frames_per_stream = 32;
    std::uint64_t seed = 1;        ///< arrival phases + sample contents

    /// Batching policy (the fleet builds the DynamicBatcher itself).
    int batch_max = 64;
    std::uint64_t batch_delay_us = 2000;
    std::size_t infer_threads = 1;

    /// Virtual service-time model: a flushed batch of B frames occupies the
    /// engine for base + B * per_frame microseconds, queued behind the
    /// previous batch. Latency = completion - arrival, in virtual time.
    double service_base_us = 200.0;
    double service_per_frame_us = 50.0;
    double slo_budget_ms = 5.0;

    /// Load shedding. Off = never degrade (the equivalence configuration).
    bool shedding = true;
    OverloadControl::Options overload;
    std::size_t max_inflight = 1u << 20;  ///< hard cap; beyond it frames drop

    /// Per-stream health process; `health.seed` is the base seed.
    core::HealthEngineConfig health;
    core::VotingScheme scheme = core::VotingScheme::majority;
};

struct FleetResult {
    std::uint64_t frames = 0;
    std::uint64_t decided = 0;
    std::uint64_t skipped = 0;
    std::uint64_t no_output = 0;
    std::uint64_t degraded = 0;  ///< shed to the single-version path
    std::uint64_t dropped = 0;   ///< refused at the hard inflight cap
    std::uint64_t slo_breaches = 0;
    std::uint64_t batch_flushes = 0;
    double mean_batch = 0.0;       ///< mean flushed batch size
    double p50_virtual_ms = 0.0;   ///< virtual-latency percentiles over
    double p99_virtual_ms = 0.0;   ///< frames that ran inference
    double shed_rate = 0.0;        ///< (degraded + dropped) / frames
    double wall_ms = 0.0;          ///< real elapsed time (throughput only)
    /// FNV-1a over every (stream, frame) outcome in canonical order —
    /// identical for any batching of the same seeded inputs.
    std::uint64_t output_hash = 0;
};

/// Run the fleet to completion. `set` is shared const across all streams.
/// When `stats` is non-null every finished frame is folded into it with
/// virtual-time FrameTrace stamps, so a seeded run renders a byte-identical
/// FleetStats::to_json document — and the output hash is unchanged either
/// way (telemetry never feeds back into the control path).
[[nodiscard]] FleetResult run_fleet(const ModelSet& set, const FleetOptions& options,
                                    FleetStats* stats = nullptr);

}  // namespace mvreju::serve
