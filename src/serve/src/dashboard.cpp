#include "mvreju/serve/dashboard.hpp"

#include <cstdio>
#include <stdexcept>

#include "mvreju/util/json.hpp"

namespace mvreju::serve::dashboard {

namespace {

std::uint64_t as_u64(const util::Json& v) {
    return static_cast<std::uint64_t>(v.number());
}

/// Fixed-width fixed-precision cell: deterministic for the golden test.
std::string fixed(double v, int width, int precision) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%*.*f", width, precision, v);
    return buf;
}

std::string padded(const std::string& s, int width) {
    std::string out = s;
    while (static_cast<int>(out.size()) < width) out += ' ';
    return out;
}

std::string right(const std::string& s, int width) {
    std::string out;
    for (int i = static_cast<int>(s.size()); i < width; ++i) out += ' ';
    return out + s;
}

}  // namespace

FleetDoc parse(const std::string& json_text) {
    const util::Json doc = util::Json::parse(json_text);
    FleetDoc out;
    out.schema = doc.at("schema").str();
    if (out.schema != "mvreju.fleet.v1")
        throw std::runtime_error("dashboard: unsupported schema " + out.schema);
    out.now_us = as_u64(doc.at("now_us"));
    out.window_us = as_u64(doc.at("window_us"));
    // Optional: documents rendered before the backend registry existed
    // (or hand-built test fixtures) simply omit it.
    if (const util::Json* backend = doc.find("backend")) out.backend = backend->str();
    out.streams = as_u64(doc.at("streams"));
    out.frames = as_u64(doc.at("frames"));
    const util::Json& status = doc.at("status");
    out.decided = as_u64(status.at("decided"));
    out.skipped = as_u64(status.at("skipped"));
    out.no_output = as_u64(status.at("no_output"));
    out.shed = as_u64(status.at("shed"));
    out.error = as_u64(status.at("error"));
    out.degraded = as_u64(doc.at("degraded"));
    out.slo_breaches = as_u64(doc.at("slo_breaches"));

    const util::Json& breaches = doc.at("breach_by_stage");
    for (const auto& [name, window] : doc.at("stages").members()) {
        StageRow row;
        row.name = name;
        row.count = as_u64(window.at("count"));
        if (row.count > 0) {
            row.mean_ms = window.at("mean_ms").number();
            row.p50_ms = window.at("p50_ms").number();
            row.p90_ms = window.at("p90_ms").number();
            row.p99_ms = window.at("p99_ms").number();
            row.max_ms = window.at("max_ms").number();
        }
        if (const util::Json* b = breaches.find(name)) row.breaches = as_u64(*b);
        out.stages.push_back(std::move(row));
    }

    // Optional: only serving processes running the sampling profiler
    // publish CPU attribution.
    if (const util::Json* cpu = doc.find("cpu_by_stage")) {
        for (const auto& [name, share] : cpu->members()) {
            CpuRow row;
            row.stage = name;
            row.samples = as_u64(share.at("samples"));
            row.fraction = share.at("fraction").number();
            out.cpu_by_stage.push_back(std::move(row));
        }
    }

    for (const util::Json& entry : doc.at("worst_streams").items()) {
        StreamRow row;
        row.stream = static_cast<std::uint32_t>(as_u64(entry.at("stream")));
        row.reliability = entry.at("reliability").number();
        row.frames = as_u64(entry.at("frames"));
        row.breaches = as_u64(entry.at("breaches"));
        row.dropped = as_u64(entry.at("dropped"));
        row.p99_total_ms = entry.at("p99_total_ms").number();
        out.worst.push_back(row);
    }
    return out;
}

std::string render(const FleetDoc& doc) {
    std::string out;
    out += "fleet @ " + fixed(static_cast<double>(doc.now_us) / 1e6, 0, 3) +
           "s  window " +
           fixed(static_cast<double>(doc.window_us) / 1e6, 0, 1) +
           "s  streams " + std::to_string(doc.streams) + "  frames " +
           std::to_string(doc.frames) +
           (doc.backend.empty() ? "" : "  backend " + doc.backend) + "\n";
    out += "status  decided " + std::to_string(doc.decided) + "  skipped " +
           std::to_string(doc.skipped) + "  no_output " +
           std::to_string(doc.no_output) + "  shed " + std::to_string(doc.shed) +
           "  error " + std::to_string(doc.error) + "\n";
    out += "        degraded " + std::to_string(doc.degraded) +
           "  slo_breaches " + std::to_string(doc.slo_breaches) + "\n";

    // The cpu% column (share of profile samples charged to the stage's tag)
    // appears only when the document carries CPU attribution, so renders of
    // unprofiled documents — and their goldens — keep the classic layout.
    const bool with_cpu = !doc.cpu_by_stage.empty();
    auto cpu_for = [&doc](const std::string& stage) -> const CpuRow* {
        for (const CpuRow& c : doc.cpu_by_stage)
            if (c.stage == stage) return &c;
        return nullptr;
    };

    out += "\n";
    out += padded("stage", 10) + right("count", 8) + right("mean_ms", 10) +
           right("p50_ms", 10) + right("p90_ms", 10) + right("p99_ms", 10) +
           right("max_ms", 10) + right("breaches", 10) +
           (with_cpu ? right("cpu%", 8) : "") + "\n";
    for (const StageRow& s : doc.stages) {
        out += padded(s.name, 10) + right(std::to_string(s.count), 8);
        if (s.count > 0) {
            out += fixed(s.mean_ms, 10, 3) + fixed(s.p50_ms, 10, 3) +
                   fixed(s.p90_ms, 10, 3) + fixed(s.p99_ms, 10, 3) +
                   fixed(s.max_ms, 10, 3);
        } else {
            for (int c = 0; c < 5; ++c) out += right("-", 10);
        }
        out += right(std::to_string(s.breaches), 10);
        if (with_cpu) {
            const CpuRow* cpu = cpu_for(s.name);
            out += cpu ? fixed(cpu->fraction * 100.0, 8, 1) : right("-", 8);
        }
        out += "\n";
    }
    if (with_cpu) {
        // Tags with no latency row of their own (e.g. "untagged" — samples
        // landing outside every stage scope) still deserve a line.
        std::string extras;
        for (const CpuRow& c : doc.cpu_by_stage) {
            bool matched = false;
            for (const StageRow& s : doc.stages)
                if (s.name == c.stage) { matched = true; break; }
            if (matched) continue;
            if (!extras.empty()) extras += "  ";
            extras += c.stage + " " + fixed(c.fraction * 100.0, 0, 1) + "%";
        }
        if (!extras.empty()) out += "cpu other: " + extras + "\n";
    }

    out += "\n";
    out += "worst streams\n";
    out += padded("stream", 8) + right("reliability", 12) + right("frames", 8) +
           right("breaches", 10) + right("dropped", 9) +
           right("p99_total_ms", 14) + "\n";
    for (const StreamRow& s : doc.worst) {
        out += padded(std::to_string(s.stream), 8) +
               fixed(s.reliability, 12, 4) +
               right(std::to_string(s.frames), 8) +
               right(std::to_string(s.breaches), 10) +
               right(std::to_string(s.dropped), 9) +
               fixed(s.p99_total_ms, 14, 3) + "\n";
    }
    return out;
}

}  // namespace mvreju::serve::dashboard
