#include "mvreju/serve/trace.hpp"

#include <algorithm>

namespace mvreju::serve {

namespace {

/// Boundary pair of each derived stage, index = Stage.
constexpr TracePoint kStageFrom[kStageCount] = {
    TracePoint::rx,          TracePoint::enqueue, TracePoint::formed,
    TracePoint::infer_start, TracePoint::infer_end, TracePoint::vote,
    TracePoint::rx,
};
constexpr TracePoint kStageTo[kStageCount] = {
    TracePoint::enqueue,   TracePoint::formed, TracePoint::infer_start,
    TracePoint::infer_end, TracePoint::vote,   TracePoint::tx,
    TracePoint::tx,
};

constexpr const char* kStageNames[kStageCount] = {
    "parse", "queue", "dispatch", "infer", "vote", "tx", "total",
};

}  // namespace

const char* stage_name(Stage stage) noexcept {
    const auto index = static_cast<std::size_t>(stage);
    return index < kStageCount ? kStageNames[index] : "?";
}

std::uint64_t FrameTrace::stage_us(Stage stage) const noexcept {
    const auto index = static_cast<std::size_t>(stage);
    if (index >= kStageCount) return 0;
    const std::uint64_t from = at(kStageFrom[index]);
    const std::uint64_t to = at(kStageTo[index]);
    return (from == 0 || to <= from) ? 0 : to - from;
}

bool FrameTrace::stage_bounded(Stage stage) const noexcept {
    const auto index = static_cast<std::size_t>(stage);
    if (index >= kStageCount) return false;
    const std::uint64_t from = at(kStageFrom[index]);
    const std::uint64_t to = at(kStageTo[index]);
    return from != 0 && to != 0 && to >= from;
}

std::array<std::uint32_t, kStageCount> FrameTrace::breakdown_us() const noexcept {
    std::array<std::uint32_t, kStageCount> out{};
    for (std::size_t s = 0; s < kStageCount; ++s)
        out[s] = static_cast<std::uint32_t>(std::min<std::uint64_t>(
            stage_us(static_cast<Stage>(s)), 0xffffffffull));
    return out;
}

Stage FrameTrace::dominant_stage() const noexcept {
    Stage best = Stage::parse;
    std::uint64_t best_us = stage_us(Stage::parse);
    for (std::size_t s = 1; s + 1 < kStageCount; ++s) {  // exclude total
        const std::uint64_t d = stage_us(static_cast<Stage>(s));
        if (d > best_us) {
            best = static_cast<Stage>(s);
            best_us = d;
        }
    }
    return best;
}

}  // namespace mvreju::serve
