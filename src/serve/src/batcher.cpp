#include "mvreju/serve/batcher.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "mvreju/obs/metrics.hpp"
#include "mvreju/obs/profiler.hpp"
#include "mvreju/util/parallel.hpp"

namespace mvreju::serve {

DynamicBatcher::DynamicBatcher(Options options)
    : options_(std::move(options)),
      sample_size_(ml::Tensor::count(options_.input_shape)) {
    if (options_.max_batch < 1)
        throw std::invalid_argument("DynamicBatcher: max_batch must be >= 1");
    if (sample_size_ == 0)
        throw std::invalid_argument("DynamicBatcher: empty input shape");
}

DynamicBatcher::Queue& DynamicBatcher::queue_for(const ml::Sequential* model,
                                                 const num::KernelBackend* backend) {
    for (Queue& q : queues_)
        if (q.model == model && q.backend == backend) return q;
    queues_.push_back(Queue{model, backend, {}, {}, 0});
    return queues_.back();
}

void DynamicBatcher::submit(const ml::Sequential* model, const float* sample,
                            std::uint64_t now_us, Completion done,
                            const num::KernelBackend* backend) {
    if (backend == nullptr) backend = &model->backend();
    Queue& queue = queue_for(model, backend);
    if (queue.done.empty()) queue.oldest_us = now_us;
    queue.staging.insert(queue.staging.end(), sample, sample + sample_size_);
    queue.done.push_back(std::move(done));
    ++pending_;
    if (queue.done.size() >= static_cast<std::size_t>(options_.max_batch)) {
        static obs::Counter& full = obs::metrics().counter("serve.batch.flushes_full");
        full.add(1);
        flush_queue(queue, now_us);
    }
}

std::optional<std::uint64_t> DynamicBatcher::next_deadline_us() const {
    std::optional<std::uint64_t> deadline;
    for (const Queue& q : queues_) {
        if (q.done.empty()) continue;
        const std::uint64_t d = q.oldest_us + options_.max_delay_us;
        if (!deadline || d < *deadline) deadline = d;
    }
    return deadline;
}

std::size_t DynamicBatcher::flush_due(std::uint64_t now_us) {
    // Index-based iteration: completions running inside flush_queue may
    // re-submit, and a submit for a model the batcher has not seen yet grows
    // queues_, invalidating iterators and references. Re-reading size() each
    // pass also gives queues appended mid-loop their own deadline check.
    std::size_t completed = 0;
    for (std::size_t i = 0; i < queues_.size(); ++i) {
        if (queues_[i].done.empty() ||
            queues_[i].oldest_us + options_.max_delay_us > now_us)
            continue;
        static obs::Counter& deadline =
            obs::metrics().counter("serve.batch.flushes_deadline");
        deadline.add(1);
        completed += flush_queue(queues_[i], now_us);
    }
    return completed;
}

std::size_t DynamicBatcher::flush_all(std::uint64_t now_us) {
    std::size_t completed = 0;
    for (std::size_t i = 0; i < queues_.size(); ++i)
        if (!queues_[i].done.empty()) completed += flush_queue(queues_[i], now_us);
    return completed;
}

std::size_t DynamicBatcher::flush_queue(Queue& queue, std::uint64_t formed_us) {
    const std::size_t n = queue.done.size();
    const ml::Sequential* model = queue.model;
    const num::KernelBackend* backend = queue.backend;
    // Steal the staged batch first: completions may re-submit — including
    // for an unseen model, which reallocates queues_ and dangles `queue` —
    // so nothing below may touch the Queue reference again.
    std::vector<float> staged = std::move(queue.staging);
    std::vector<Completion> done = std::move(queue.done);
    queue.staging.clear();
    queue.done.clear();
    pending_ -= n;

    // Parallelism lives at chunk granularity, mirroring predict_batch: each
    // chunk runs the whole layer stack serially in its own workspace, so one
    // parallel_for covers the flush. Per-layer thread fan-out inside
    // logits_batch would respawn workers layer by layer and eat the batching
    // win. Chunking never changes a sample's logits, so labels stay
    // bit-identical to model->predict() for every chunking and thread count.
    constexpr std::size_t kMinChunk = 8;
    std::size_t workers =
        options_.num_threads == 0 ? util::hardware_threads() : options_.num_threads;
    workers = std::min(workers, n / kMinChunk);

    std::vector<int> labels(n);
    const std::uint64_t infer_start_us =
        options_.now_fn ? options_.now_fn() : formed_us;
    auto run_chunk = [&](ml::Workspace& ws, std::size_t pos, std::size_t nb) {
        // CPU attribution for the sampling profiler: inference dominates a
        // serving process, and the scope also registers the (fresh, per
        // flush) parallel_for workers with the profiler's recycled rings.
        MVREJU_PROFILE_STAGE(profile_scope, "infer");
        std::vector<std::size_t> shape;
        shape.reserve(options_.input_shape.size() + 1);
        shape.push_back(nb);
        shape.insert(shape.end(), options_.input_shape.begin(),
                     options_.input_shape.end());
        ml::Tensor batch = ws.take(std::move(shape));
        std::memcpy(batch.data().data(), staged.data() + pos * sample_size_,
                    nb * sample_size_ * sizeof(float));
        ml::Tensor logits = model->logits_batch(batch, ws, 1, *backend);
        const std::size_t classes = logits.size() / nb;
        const float* rows = logits.data().data();
        for (std::size_t i = 0; i < nb; ++i) {
            // First-max argmax over the row, replicating ml::argmax (and
            // thus model->predict) bit-for-bit — ties resolve to the lowest
            // class.
            const float* row = rows + i * classes;
            std::size_t best = 0;
            for (std::size_t j = 1; j < classes; ++j)
                if (row[j] > row[best]) best = j;
            labels[pos + i] = static_cast<int>(best);
        }
        ws.give(std::move(logits));
        ws.give(std::move(batch));
    };

    if (workers <= 1) {
        run_chunk(ws_, 0, n);
    } else {
        if (chunk_ws_.size() < workers) chunk_ws_.resize(workers);
        const std::size_t chunk = (n + workers - 1) / workers;
        util::parallel_for(
            workers,
            [&](std::size_t c) {
                const std::size_t pos = c * chunk;
                if (pos >= n) return;
                run_chunk(chunk_ws_[c], pos, std::min(chunk, n - pos));
            },
            workers);
    }

    static obs::Counter& frames = obs::metrics().counter("serve.batch.frames");
    static obs::Histogram& sizes = obs::metrics().histogram(
        "serve.batch.size", obs::HistogramBounds::exponential(1.0, 2.0, 9));
    frames.add(n);
    sizes.record(static_cast<double>(n));

    const std::uint64_t infer_end_us =
        options_.now_fn ? options_.now_fn() : formed_us;
    const BatchStamp stamp{++flush_seq_, static_cast<std::uint32_t>(n), formed_us,
                           infer_start_us, infer_end_us};
    for (std::size_t i = 0; i < n; ++i) done[i](labels[i], stamp);
    return n;
}

}  // namespace mvreju::serve
