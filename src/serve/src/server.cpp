#include "mvreju/serve/server.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <mutex>
#include <optional>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "mvreju/net/conn.hpp"
#include "mvreju/net/event_loop.hpp"
#include "mvreju/net/listener.hpp"
#include "mvreju/obs/exporter.hpp"
#include "mvreju/obs/flight_recorder.hpp"
#include "mvreju/obs/metrics.hpp"
#include "mvreju/obs/profiler.hpp"
#include "mvreju/serve/batcher.hpp"
#include "mvreju/serve/fleet_stats.hpp"
#include "mvreju/serve/protocol.hpp"
#include "mvreju/serve/trace.hpp"

namespace mvreju::serve {

namespace {
using Clock = std::chrono::steady_clock;
}

struct Server::Impl {
    const ModelSet& set;
    Options options;

    std::unique_ptr<net::EventLoop> loop;
    std::unique_ptr<net::Listener> listener;
    std::thread thread;
    bool started = false;
    int bound_port = 0;
    Clock::time_point epoch{};

    /// One admitted client stream. Everything here is touched only by the
    /// service thread.
    struct Client {
        std::shared_ptr<net::Conn> conn;
        std::unique_ptr<Session> session;
        FrameParser parser;
        explicit Client(std::size_t sample_size) : parser(sample_size) {}
    };

    struct InFlight {
        std::uint64_t stream_id = 0;
        std::uint64_t request_id = 0;  ///< client frame id, echoed back
        core::FramePlan plan;
        std::vector<std::optional<int>> proposals;
        int remaining = 0;
        std::uint64_t arrival_us = 0;
        bool degraded = false;
        bool want_trace = false;  ///< client asked for the stage annex
        FrameTrace trace;
    };

    DynamicBatcher batcher;
    OverloadControl overload;
    FleetStats fleet_stats;
    std::uint64_t last_publish_us = 0;
    std::unordered_map<std::uint64_t, Client> clients;
    std::unordered_map<std::uint64_t, InFlight> inflight;
    /// Clients whose connection closed mid-callback. on_close() extracts the
    /// node instead of erasing so that Client& references held further up
    /// the stack (on_data's dispatch loop, finalize) stay valid; the nodes
    /// are destroyed at the top of the next serve_loop tick.
    std::vector<std::unordered_map<std::uint64_t, Client>::node_type> graveyard;
    std::vector<std::weak_ptr<net::Conn>> refused;  ///< closing after refusal
    std::uint64_t next_stream_id = 1;
    std::uint64_t next_frame_key = 1;

    mutable std::mutex stats_mutex;
    Stats stats_snapshot;

    Impl(const ModelSet& model_set, const Options& server_options)
        : set(model_set),
          options(server_options),
          batcher(DynamicBatcher::Options{server_options.batch_max,
                                          server_options.batch_delay_us,
                                          server_options.infer_threads,
                                          model_set.input_shape,
                                          [this] { return now_us(); }}),
          overload(server_options.overload) {
        fleet_stats.set_backend(model_set.backend_name);
    }

    [[nodiscard]] std::uint64_t now_us() const {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                  epoch)
                .count());
    }

    template <typename Fn>
    void bump(Fn&& update) {
        const std::lock_guard<std::mutex> guard(stats_mutex);
        update(stats_snapshot);
    }

    void respond(Client& client, const ResponseFrame& response) {
        MVREJU_PROFILE_STAGE(profile_scope, "tx");
        if (!client.conn || client.conn->closed()) return;
        client.conn->send(encode_response(response));
    }

    /// Track a refused conn for shutdown, recycling slots left by conns
    /// that already drained (same idiom as obs::Exporter) so a sustained
    /// flood past max_streams cannot grow the vector without bound.
    void track_refused(const std::shared_ptr<net::Conn>& conn) {
        for (auto& slot : refused) {
            if (slot.expired()) {
                slot = conn;
                return;
            }
        }
        refused.push_back(conn);
    }

    void on_accept(int fd) {
        if (clients.size() >= static_cast<std::size_t>(options.max_streams)) {
            // Admission refusal: one error frame, then close. The conn is
            // loop-owned until it drains; track it for shutdown.
            auto conn = net::Conn::adopt(*loop, fd, [](net::Conn&) {});
            if (conn) {
                conn->send(encode_response(ResponseFrame{}));
                conn->close_after_send();
                track_refused(conn);
            }
            static obs::Counter& refusals =
                obs::metrics().counter("serve.admission_refusals");
            refusals.add(1);
            bump([](Stats& s) { ++s.admission_refusals; });
            return;
        }
        const std::uint64_t id = next_stream_id++;
        auto [it, inserted] = clients.emplace(id, Client(set.sample_size()));
        Client& client = it->second;
        Session::Options session_options;
        session_options.health = options.health;
        session_options.scheme = options.scheme;
        client.session = std::make_unique<Session>(id, set, session_options);
        client.conn = net::Conn::adopt(
            *loop, fd, [this, id](net::Conn&) { on_data(id); },
            [this, id](net::Conn&) { on_close(id); });
        if (!client.conn) {
            clients.erase(id);
            return;
        }
        client.conn->tag = id;
        bump([this](Stats& s) {
            ++s.connections;
            s.active_streams = clients.size();
        });
    }

    void on_close(std::uint64_t id) {
        auto node = clients.extract(id);
        if (!node.empty()) graveyard.push_back(std::move(node));
        bump([this](Stats& s) { s.active_streams = clients.size(); });
    }

    void on_data(std::uint64_t id) {
        // Stage tags scope the sampling profiler's CPU attribution: samples
        // landing while a scope is live are charged to its stage, so /fleet's
        // cpu_by_stage mirrors the FrameTrace stage names. Nested scopes
        // (finalize -> respond) charge the innermost stage.
        MVREJU_PROFILE_STAGE(profile_scope, "parse");
        auto it = clients.find(id);
        if (it == clients.end()) return;
        Client& client = it->second;
        std::vector<RequestFrame> requests;
        const bool ok = client.parser.consume(client.conn->rx(), requests);
        for (RequestFrame& request : requests) handle_frame(client, request);
        if (!ok) {
            // Protocol violation: one error response naming nothing (the
            // offending frame has no trustworthy id), then close. The
            // stream's inflight frames finalize harmlessly against the
            // erased client.
            static obs::Counter& errors =
                obs::metrics().counter("serve.protocol_errors");
            errors.add(1);
            bump([](Stats& s) { ++s.protocol_errors; });
            respond(client, ResponseFrame{});
            client.conn->close_after_send();
        }
    }

    void handle_frame(Client& client, RequestFrame& request) {
        const std::uint64_t arrival = now_us();
        const double t_s = static_cast<double>(arrival) * 1e-6;
        core::FramePlan plan = client.session->begin_frame(t_s);
        bump([](Stats& s) { ++s.frames; });

        ResponseFrame response;
        response.frame_id = request.frame_id;
        response.functional_modules =
            static_cast<std::uint32_t>(plan.functional_modules);

        if (plan.functional_modules == 0) {
            const SessionResult result = client.session->complete_frame(
                plan, std::vector<std::optional<int>>(plan.states.size()));
            response.status = ResponseStatus::no_output;
            response.agreeing = static_cast<std::uint16_t>(result.agreeing);
            overload.record(false);
            bump([](Stats& s) { ++s.no_output; });
            FrameTrace trace;
            trace.stamp(TracePoint::rx, arrival);
            trace.stamp(TracePoint::vote, now_us());
            trace.stamp(TracePoint::tx, now_us());
            if (request.want_trace) {
                response.has_trace = true;
                response.stage_us = trace.breakdown_us();
            }
            respond(client, response);
            observe_frame(client.conn->tag, request.frame_id, trace,
                          response.status, false);
            return;
        }

        if (inflight.size() >= options.max_inflight) {
            static obs::Counter& dropped =
                obs::metrics().counter("serve.shed.dropped");
            dropped.add(1);
            MVREJU_OBS_EVENT_AT(arrival * 1000, obs::EventKind::load_shed,
                                request.frame_id,
                                static_cast<std::uint32_t>(client.conn->tag), 2.0,
                                overload.breach_fraction());
            overload.record(true);
            response.status = ResponseStatus::shed;
            bump([](Stats& s) { ++s.dropped; });
            FrameTrace trace;
            trace.stamp(TracePoint::rx, arrival);
            trace.stamp(TracePoint::tx, now_us());
            if (request.want_trace) {
                response.has_trace = true;
                response.stage_us = trace.breakdown_us();
            }
            respond(client, response);
            observe_frame(client.conn->tag, request.frame_id, trace,
                          response.status, false);
            return;
        }

        const bool degrade = options.shedding && overload.overloaded();
        const int primary = Session::primary_version(plan);
        const std::uint64_t stream_id = client.conn->tag;

        // Resolve the models up front: once the first submit happens a full
        // batch may flush synchronously, run on_label, and erase this frame
        // from `inflight` — so nothing below may hold references into it
        // across a submit.
        std::vector<std::tuple<std::size_t, const ml::Sequential*,
                               const num::KernelBackend*>>
            to_submit;
        for (std::size_t m = 0; m < plan.states.size(); ++m) {
            if (degrade && static_cast<int>(m) != primary) continue;
            const ml::Sequential* model =
                client.session->model_for(m, plan.states[m]);
            if (model != nullptr)
                to_submit.emplace_back(m, model, &client.session->backend_for(m));
        }

        const std::uint64_t key = next_frame_key++;
        InFlight& frame = inflight[key];
        frame.stream_id = stream_id;
        frame.request_id = request.frame_id;
        frame.proposals.assign(plan.states.size(), std::nullopt);
        frame.arrival_us = arrival;
        frame.degraded = degrade;
        frame.want_trace = request.want_trace;
        frame.remaining = static_cast<int>(to_submit.size());
        frame.plan = std::move(plan);
        frame.trace.stamp(TracePoint::rx, arrival);

        if (degrade) {
            static obs::Counter& shed =
                obs::metrics().counter("serve.shed.degraded");
            shed.add(1);
            MVREJU_OBS_EVENT_AT(arrival * 1000, obs::EventKind::load_shed,
                                request.frame_id,
                                static_cast<std::uint32_t>(stream_id), 1.0,
                                overload.breach_fraction());
            bump([](Stats& s) { ++s.degraded; });
        }

        if (to_submit.empty()) {
            // Every eligible module was non-functional: vote over an empty
            // proposal set right away instead of leaving the frame stranded.
            finalize(frame);
            inflight.erase(key);
            return;
        }
        // enqueue closes the parse stage: plan + model resolution above,
        // batcher staging below.
        frame.trace.stamp(TracePoint::enqueue, now_us());
        for (const auto& [m, model, backend] : to_submit) {
            batcher.submit(
                model, request.image.data(), arrival,
                [this, key, m = m](int label, const BatchStamp& stamp) {
                    on_label(key, m, label, stamp);
                },
                backend);
        }
    }

    void on_label(std::uint64_t key, std::size_t module, int label,
                  const BatchStamp& stamp) {
        auto it = inflight.find(key);
        if (it == inflight.end()) return;
        InFlight& frame = it->second;
        frame.proposals[module] = label;
        // Monotone stamps: a frame fanned over several batches keeps the
        // boundaries of the last flush that carried one of its versions.
        frame.trace.stamp(TracePoint::formed, stamp.formed_us);
        frame.trace.stamp(TracePoint::infer_start, stamp.infer_start_us);
        frame.trace.stamp(TracePoint::infer_end, stamp.infer_end_us);
        if (--frame.remaining > 0) return;
        finalize(frame);
        inflight.erase(it);
    }

    void finalize(InFlight& frame) {
        MVREJU_PROFILE_STAGE(profile_scope, "vote");
        auto it = clients.find(frame.stream_id);
        if (it == clients.end()) return;  // stream disconnected mid-flight
        Client& client = it->second;
        const SessionResult result =
            client.session->complete_frame(frame.plan, std::move(frame.proposals));
        frame.trace.stamp(TracePoint::vote, now_us());

        const double latency_ms =
            static_cast<double>(now_us() - frame.arrival_us) / 1000.0;
        const bool breach = latency_ms > options.slo_budget_ms;
        if (breach) {
            static obs::Counter& breaches =
                obs::metrics().counter("serve.slo_breach");
            breaches.add(1);
            MVREJU_OBS_EVENT_AT(now_us() * 1000, obs::EventKind::slo_breach,
                                frame.request_id,
                                static_cast<std::uint32_t>(frame.stream_id),
                                latency_ms, options.slo_budget_ms);
            bump([](Stats& s) { ++s.slo_breaches; });
        }
        overload.record(breach);

        ResponseFrame response;
        response.frame_id = frame.request_id;
        response.status = static_cast<ResponseStatus>(result.kind);
        response.degraded = frame.degraded;
        response.agreeing = static_cast<std::uint16_t>(result.agreeing);
        response.label = result.label;
        response.functional_modules =
            static_cast<std::uint32_t>(result.functional_modules);
        bump([&result](Stats& s) {
            switch (result.kind) {
                case core::VoteKind::decided: ++s.decided; break;
                case core::VoteKind::skipped: ++s.skipped; break;
                case core::VoteKind::no_output: ++s.no_output; break;
            }
        });
        // The wire annex is stamped just before serialisation — it cannot
        // include its own send; FleetStats sees the same trace.
        frame.trace.stamp(TracePoint::tx, now_us());
        if (frame.want_trace) {
            response.has_trace = true;
            response.stage_us = frame.trace.breakdown_us();
        }
        respond(client, response);
        observe_frame(frame.stream_id, frame.request_id, frame.trace,
                      response.status, frame.degraded, latency_ms,
                      options.slo_budget_ms);
    }

    /// Fold one finished frame into the fleet telemetry and refresh the
    /// exporter documents when the publish interval has elapsed. Runs on
    /// the service thread; the exporter only ever sees rendered strings.
    void observe_frame(std::uint64_t stream, std::uint64_t frame_id,
                       const FrameTrace& trace, ResponseStatus status,
                       bool degraded, double latency_ms = 0.0,
                       double slo_budget_ms = 0.0) {
        if (!options.publish_telemetry) return;
        const std::uint64_t now = now_us();
        FrameObservation fo;
        fo.stream = static_cast<std::uint32_t>(stream);
        fo.frame = frame_id;
        fo.trace = trace;
        fo.status = status;
        fo.degraded = degraded;
        fo.latency_ms = latency_ms;
        fo.slo_budget_ms = slo_budget_ms;
        fleet_stats.observe(fo, now);
        maybe_publish(now);
    }

    /// Throttled push of /fleet JSON and the aggregated health report to
    /// the global exporter (no-op unless one is serving).
    void maybe_publish(std::uint64_t now) {
        if (now - last_publish_us < options.publish_interval_us &&
            last_publish_us != 0)
            return;
        obs::Exporter& exporter = obs::Exporter::global();
        if (!exporter.running()) return;
        last_publish_us = now;
#ifndef MVREJU_OBS_DISABLED
        // When the sampling profiler is armed, fold its per-stage CPU
        // attribution (last 10 s) into the fleet document so fleet_top can
        // put a CPU% column next to the stage latency rows.
        if (obs::Profiler* profiler = obs::Profiler::active()) {
            std::vector<FleetStats::StageCpuShare> shares;
            for (const obs::StageCpu& cpu : profiler->stage_cpu(10))
                shares.push_back({cpu.stage, cpu.samples, cpu.fraction});
            fleet_stats.set_cpu_by_stage(std::move(shares));
        }
#endif
        exporter.set_fleet_json(fleet_stats.to_json(now));
        exporter.set_health(aggregate_health(now));
    }

    /// Fold every live stream's health process into one exporter report:
    /// counts sum over streams x versions, per-version states are the modal
    /// state across streams, and the rejuvenation age comes from the most
    /// recent completion anywhere in the fleet.
    [[nodiscard]] obs::HealthReport aggregate_health(std::uint64_t now) const {
        obs::HealthReport report;
        const double now_s = static_cast<double>(now) * 1e-6;
        double last_rejuvenation_s = -1.0;
        // state_votes[v][s]: streams whose version v is in state s.
        std::vector<std::array<std::size_t, 4>> state_votes;
        for (const auto& [id, client] : clients) {
            const core::HealthEngine& health = client.session->health();
            const int modules = health.module_count();
            if (state_votes.size() < static_cast<std::size_t>(modules))
                state_votes.resize(static_cast<std::size_t>(modules));
            for (int m = 0; m < modules; ++m) {
                const core::ModuleState state = health.state(m);
                ++state_votes[static_cast<std::size_t>(m)]
                             [static_cast<std::size_t>(state)];
                switch (state) {
                    case core::ModuleState::healthy: ++report.healthy; break;
                    case core::ModuleState::compromised:
                        ++report.compromised;
                        break;
                    case core::ModuleState::nonfunctional:
                        ++report.nonfunctional;
                        break;
                    case core::ModuleState::rejuvenating_proactive:
                        ++report.rejuvenating;
                        break;
                }
            }
            last_rejuvenation_s =
                std::max(last_rejuvenation_s, health.last_rejuvenation_time());
        }
        static constexpr const char* kStateNames[4] = {
            "healthy", "compromised", "nonfunctional", "rejuvenating"};
        for (const auto& votes : state_votes) {
            std::size_t best = 0;
            for (std::size_t s = 1; s < votes.size(); ++s)
                if (votes[s] > votes[best]) best = s;
            report.module_states.emplace_back(kStateNames[best]);
        }
        report.last_rejuvenation_age_s =
            last_rejuvenation_s < 0.0 ? -1.0 : now_s - last_rejuvenation_s;
        return report;
    }

    void serve_loop() {
        while (!loop->stop_requested()) {
            graveyard.clear();  // no Client& references live between ticks
            int timeout = options.tick_ms;
            if (const auto deadline = batcher.next_deadline_us()) {
                const std::uint64_t now = now_us();
                const std::uint64_t wait_us = *deadline > now ? *deadline - now : 0;
                timeout = static_cast<int>(
                    std::min<std::uint64_t>(wait_us / 1000,
                                            static_cast<std::uint64_t>(timeout)));
            }
            if (loop->poll_once(timeout) < 0) break;
            batcher.flush_due(now_us());
            // Keep the exporter documents fresh even when no frames flow.
            if (options.publish_telemetry) maybe_publish(now_us());
        }
    }
};

Server::Server(const ModelSet& set, const Options& options)
    : impl_(std::make_unique<Impl>(set, options)) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
    if (impl_->started) {
        if (error) *error = "already running";
        return false;
    }
    impl_->loop = std::make_unique<net::EventLoop>();
    impl_->loop->reset_stop();
    net::ListenerOptions listen_options;
    listen_options.host = impl_->options.host;
    listen_options.port = impl_->options.port;
    listen_options.backlog = impl_->options.backlog;
    impl_->listener = net::Listener::open(
        *impl_->loop, listen_options, [this](int fd) { impl_->on_accept(fd); },
        error);
    if (!impl_->listener) {
        impl_->loop.reset();
        return false;
    }
    impl_->bound_port = impl_->listener->port();
    impl_->epoch = Clock::now();
    impl_->started = true;
    impl_->thread = std::thread([this] { impl_->serve_loop(); });
    return true;
}

void Server::stop() {
    if (!impl_->started) return;
    impl_->loop->stop();
    if (impl_->thread.joinable()) impl_->thread.join();
    // Close every connection while the loop still exists: Conn::close
    // unregisters from a live loop (same ordering as obs::Exporter). Steal
    // the map first — close() re-enters on_close(), which erases from the
    // member map and would invalidate this iteration.
    auto clients = std::move(impl_->clients);
    impl_->clients.clear();
    for (auto& [id, client] : clients)
        if (client.conn) client.conn->close();
    clients.clear();
    impl_->graveyard.clear();
    for (auto& weak : impl_->refused)
        if (auto conn = weak.lock()) conn->close();
    impl_->refused.clear();
    impl_->inflight.clear();
    impl_->listener.reset();
    impl_->loop.reset();
    impl_->started = false;
    impl_->bound_port = 0;
}

bool Server::running() const noexcept { return impl_->started; }

int Server::port() const noexcept { return impl_->bound_port; }

Server::Stats Server::stats() const {
    const std::lock_guard<std::mutex> guard(impl_->stats_mutex);
    return impl_->stats_snapshot;
}

}  // namespace mvreju::serve
