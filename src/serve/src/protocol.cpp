#include "mvreju/serve/protocol.hpp"

#include <bit>
#include <cstring>

namespace mvreju::serve {

namespace {

// All integers travel little endian, written byte by byte so the encoding is
// identical on any host. Floats travel as the LE bytes of their IEEE-754
// bit pattern — bit-exact round trip, which the determinism gates rely on.

void put_u16(std::string& out, std::uint16_t v) {
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint16_t get_u16(const unsigned char* p) {
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const unsigned char* p) {
    return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* p) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
}

constexpr std::size_t kResponsePayload = 8 + 1 + 1 + 2 + 4 + 4;
constexpr std::size_t kTraceAnnexBytes = 4 * kStageCount;

}  // namespace

std::string encode_request(const RequestFrame& request) {
    const std::size_t payload =
        8 + 4 * request.image.size() + (request.want_trace ? 1 : 0);
    std::string out;
    out.reserve(4 + payload);
    put_u32(out, static_cast<std::uint32_t>(payload));
    put_u64(out, request.frame_id);
    for (const float f : request.image) put_u32(out, std::bit_cast<std::uint32_t>(f));
    // The flags byte is appended only when needed, so a trace-less request
    // stays byte-identical to the v1 encoding.
    if (request.want_trace) out.push_back(static_cast<char>(kRequestFlagTrace));
    return out;
}

std::string encode_response(const ResponseFrame& response) {
    const std::size_t payload =
        kResponsePayload + (response.has_trace ? kTraceAnnexBytes : 0);
    std::string out;
    out.reserve(4 + payload);
    put_u32(out, static_cast<std::uint32_t>(payload));
    put_u64(out, response.frame_id);
    out.push_back(static_cast<char>(response.status));
    out.push_back(static_cast<char>(response.degraded ? 1 : 0));
    put_u16(out, response.agreeing);
    put_u32(out, std::bit_cast<std::uint32_t>(response.label));
    put_u32(out, response.functional_modules);
    if (response.has_trace)
        for (const std::uint32_t stage : response.stage_us) put_u32(out, stage);
    return out;
}

bool decode_response(const void* payload, std::size_t size, ResponseFrame& out) {
    if (size != kResponsePayload && size != kResponsePayload + kTraceAnnexBytes)
        return false;
    const auto* p = static_cast<const unsigned char*>(payload);
    out.frame_id = get_u64(p);
    const std::uint8_t status = p[8];
    if (status > static_cast<std::uint8_t>(ResponseStatus::error)) return false;
    out.status = static_cast<ResponseStatus>(status);
    out.degraded = p[9] != 0;
    out.agreeing = get_u16(p + 10);
    out.label = std::bit_cast<std::int32_t>(get_u32(p + 12));
    out.functional_modules = get_u32(p + 16);
    out.has_trace = size == kResponsePayload + kTraceAnnexBytes;
    out.stage_us.fill(0);
    if (out.has_trace)
        for (std::size_t s = 0; s < kStageCount; ++s)
            out.stage_us[s] = get_u32(p + kResponsePayload + 4 * s);
    return true;
}

FrameParser::FrameParser(std::size_t sample_size) : sample_size_(sample_size) {}

bool FrameParser::consume(std::string& buffer, std::vector<RequestFrame>& out) {
    if (failed()) return false;
    const std::size_t expected = 8 + 4 * sample_size_;
    std::size_t consumed = 0;
    while (buffer.size() - consumed >= 4) {
        const auto* base =
            reinterpret_cast<const unsigned char*>(buffer.data()) + consumed;
        const std::uint32_t length = get_u32(base);
        if (length > kMaxFrameBytes) {
            error_ = "frame length " + std::to_string(length) + " exceeds cap " +
                     std::to_string(kMaxFrameBytes);
            break;
        }
        // Two valid sizes per geometry: the v1 request, and the v2 request
        // carrying one trailing flags byte. Anything else is garbage.
        if (length != expected && length != expected + 1) {
            error_ = "request payload must be " + std::to_string(expected) +
                     " (+1 with flags) bytes for this model geometry, got " +
                     std::to_string(length);
            break;
        }
        if (buffer.size() - consumed < 4 + static_cast<std::size_t>(length))
            break;  // incomplete frame: wait for more bytes
        RequestFrame frame;
        frame.frame_id = get_u64(base + 4);
        if (length == expected + 1) {
            const std::uint8_t flags = base[4 + expected];
            if ((flags & ~kRequestFlagTrace) != 0) {
                error_ = "unknown request flags 0x" + std::to_string(flags);
                break;
            }
            frame.want_trace = (flags & kRequestFlagTrace) != 0;
        }
        frame.image.resize(sample_size_);
        for (std::size_t i = 0; i < sample_size_; ++i)
            frame.image[i] =
                std::bit_cast<float>(get_u32(base + 12 + 4 * i));
        out.push_back(std::move(frame));
        consumed += 4 + length;
    }
    buffer.erase(0, consumed);
    return !failed();
}

}  // namespace mvreju::serve
