#include "mvreju/serve/fleet_stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "mvreju/obs/buildinfo.hpp"
#include "mvreju/obs/flight_recorder.hpp"
#include "mvreju/obs/metrics.hpp"
#include "mvreju/obs/obs.hpp"

namespace mvreju::serve {

namespace {

// Shortest-roundtrip double rendering, same as the metrics/exporter JSON:
// %.17g is bit-faithful, so a rerun of the same seeded fleet produces the
// same bytes.
std::string fmt_double(double v) {
    if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

constexpr const char* kStatusNames[] = {"decided", "skipped", "no_output",
                                        "shed", "error"};

}  // namespace

FleetStats::FleetStats(const Options& options) : options_(options) {
    digest_options_.slot_width_us = options_.slot_width_us;
    digest_options_.slots = options_.slots;
}

FleetStats::StreamState& FleetStats::stream_for(std::uint32_t stream) {
    const auto it = std::lower_bound(
        streams_.begin(), streams_.end(), stream,
        [](const StreamState& s, std::uint32_t id) { return s.stream < id; });
    if (it != streams_.end() && it->stream == stream) return *it;
    StreamState state;
    state.stream = stream;
    state.stage.reserve(kStageCount);
    for (std::size_t s = 0; s < kStageCount; ++s)
        state.stage.emplace_back(digest_options_);
    return *streams_.insert(it, std::move(state));
}

void FleetStats::observe(const FrameObservation& obs, std::uint64_t now_us) {
    ++frames_;
    const auto status = static_cast<std::size_t>(obs.status);
    if (status < by_status_.size()) ++by_status_[status];
    if (obs.degraded) ++degraded_;

    StreamState& state = stream_for(obs.stream);
    ++state.frames;
    if (obs.status == ResponseStatus::shed) ++state.dropped;

    const bool breach = obs.slo_budget_ms > 0.0 && obs.latency_ms > obs.slo_budget_ms;

    // Stage durations: per-stream windowed digests always (they feed the
    // deterministic /fleet document), the process-wide serve.stage.*
    // histograms and the flight recorder only when publishing is on.
    const bool publish = options_.publish_metrics && obs::enabled();
    for (std::size_t s = 0; s < kStageCount; ++s) {
        const auto stage = static_cast<Stage>(s);
        if (!obs.trace.stage_bounded(stage)) continue;
        const double ms = static_cast<double>(obs.trace.stage_us(stage)) / 1000.0;
        state.stage[s].record(now_us, ms);
        if (publish) {
            // One registry lookup per stage for the process lifetime; the
            // handles are stable, so the static array is safe to reuse.
            static obs::Histogram* hist[kStageCount] = {};
            if (hist[s] == nullptr)
                hist[s] = &obs::metrics().histogram(
                    std::string("serve.stage.") + stage_name(stage),
                    obs::HistogramBounds::exponential(0.25, 2.0, 12));
            hist[s]->record(ms);
        }
    }

    if (breach) {
        ++breaches_;
        ++state.breaches;
        const Stage dominant = obs.trace.dominant_stage();
        ++breach_by_stage_[static_cast<std::size_t>(dominant)];
        if (publish) {
            const double stage_ms =
                static_cast<double>(obs.trace.stage_us(dominant)) / 1000.0;
            MVREJU_OBS_EVENT_AT(now_us * 1000, obs::EventKind::breach_stage,
                                obs.frame, obs.stream,
                                static_cast<double>(dominant), stage_ms);
        }
    }

    // Reliability EWMA: a clean decided frame scores 1, a degraded /
    // breaching / safe-skipped frame 0.5, a frame with no useful output 0.
    double quality = 1.0;
    if (obs.degraded || breach || obs.status == ResponseStatus::skipped)
        quality = 0.5;
    if (obs.status == ResponseStatus::shed ||
        obs.status == ResponseStatus::no_output ||
        obs.status == ResponseStatus::error)
        quality = 0.0;
    state.reliability = (1.0 - options_.ewma_alpha) * state.reliability +
                        options_.ewma_alpha * quality;
}

obs::HistogramValue FleetStats::stage_window(Stage stage,
                                             std::uint64_t now_us) const {
    const auto index = static_cast<std::size_t>(stage);
    obs::WindowedDigest merged(digest_options_);
    for (const StreamState& s : streams_) merged.merge(s.stage[index]);
    return merged.window(now_us);
}

FleetStats::StreamSummary FleetStats::summarize(const StreamState& s,
                                                std::uint64_t now_us) const {
    StreamSummary out;
    out.stream = s.stream;
    out.reliability = s.reliability;
    out.frames = s.frames;
    out.breaches = s.breaches;
    out.dropped = s.dropped;
    const obs::HistogramValue total =
        s.stage[static_cast<std::size_t>(Stage::total)].window(now_us);
    out.p99_total_ms = total.count > 0 ? total.quantile(0.99) : 0.0;
    return out;
}

std::vector<FleetStats::StreamSummary> FleetStats::worst_streams(
    std::uint64_t now_us) const {
    std::vector<StreamSummary> all;
    all.reserve(streams_.size());
    for (const StreamState& s : streams_) all.push_back(summarize(s, now_us));
    std::sort(all.begin(), all.end(),
              [](const StreamSummary& a, const StreamSummary& b) {
                  if (a.reliability != b.reliability)
                      return a.reliability < b.reliability;
                  if (a.breaches != b.breaches) return a.breaches > b.breaches;
                  return a.stream < b.stream;  // total order => deterministic
              });
    if (all.size() > options_.top_k) all.resize(options_.top_k);
    return all;
}

std::string FleetStats::to_json(std::uint64_t now_us, bool include_meta) const {
    std::string out = "{\n\"schema\": \"mvreju.fleet.v1\"";
    out += ",\n\"now_us\": " + std::to_string(now_us);
    out += ",\n\"window_us\": " +
           std::to_string(digest_options_.slot_width_us *
                          static_cast<std::uint64_t>(digest_options_.slots));
    out += ",\n\"backend\": \"" + backend_ + "\"";
    out += ",\n\"streams\": " + std::to_string(streams_.size());
    out += ",\n\"frames\": " + std::to_string(frames_);
    out += ",\n\"status\": {";
    for (std::size_t i = 0; i < by_status_.size(); ++i) {
        if (i) out += ", ";
        out += std::string("\"") + kStatusNames[i] +
               "\": " + std::to_string(by_status_[i]);
    }
    out += "}";
    out += ",\n\"degraded\": " + std::to_string(degraded_);
    out += ",\n\"slo_breaches\": " + std::to_string(breaches_);

    out += ",\n\"stages\": {";
    for (std::size_t s = 0; s < kStageCount; ++s) {
        const auto stage = static_cast<Stage>(s);
        const obs::HistogramValue w = stage_window(stage, now_us);
        if (s) out += ",";
        out += std::string("\n  \"") + stage_name(stage) + "\": {";
        out += "\"count\": " + std::to_string(w.count);
        if (w.count > 0) {
            out += ", \"mean_ms\": " + fmt_double(w.mean());
            out += ", \"p50_ms\": " + fmt_double(w.quantile(0.5));
            out += ", \"p90_ms\": " + fmt_double(w.quantile(0.9));
            out += ", \"p99_ms\": " + fmt_double(w.quantile(0.99));
            out += ", \"max_ms\": " + fmt_double(w.max);
        }
        out += "}";
    }
    out += "\n}";

    out += ",\n\"breach_by_stage\": {";
    for (std::size_t s = 0; s + 1 < kStageCount; ++s) {  // total never wins
        if (s) out += ", ";
        out += std::string("\"") + stage_name(static_cast<Stage>(s)) +
               "\": " + std::to_string(breach_by_stage_[s]);
    }
    out += "}";

    if (!cpu_by_stage_.empty()) {
        out += ",\n\"cpu_by_stage\": {";
        for (std::size_t i = 0; i < cpu_by_stage_.size(); ++i) {
            const StageCpuShare& share = cpu_by_stage_[i];
            if (i) out += ", ";
            out += "\"" + share.stage + "\": {\"fraction\": " +
                   fmt_double(share.fraction) +
                   ", \"samples\": " + std::to_string(share.samples) + "}";
        }
        out += "}";
    }

    out += ",\n\"worst_streams\": [";
    const std::vector<StreamSummary> worst = worst_streams(now_us);
    for (std::size_t i = 0; i < worst.size(); ++i) {
        const StreamSummary& w = worst[i];
        out += i ? ",\n  {" : "\n  {";
        out += "\"stream\": " + std::to_string(w.stream);
        out += ", \"reliability\": " + fmt_double(w.reliability);
        out += ", \"frames\": " + std::to_string(w.frames);
        out += ", \"breaches\": " + std::to_string(w.breaches);
        out += ", \"dropped\": " + std::to_string(w.dropped);
        out += ", \"p99_total_ms\": " + fmt_double(w.p99_total_ms);
        out += "}";
    }
    out += "\n]";

    // Build stamp: always present (unlike the fuller "meta" block) so every
    // fleet snapshot — including golden-test renders — names the binary that
    // produced it. Constant within a build, so byte-determinism holds.
    const obs::RunMetadata build = obs::run_metadata();
    out += ",\n\"build\": {\"git_sha\": \"" + build.git_sha +
           "\", \"build_type\": \"" + build.build_type + "\"}";

    if (include_meta) out += ",\n\"meta\": " + obs::run_metadata_json();
    out += "\n}\n";
    return out;
}

void FleetStats::clear() {
    streams_.clear();
    frames_ = 0;
    by_status_.fill(0);
    degraded_ = 0;
    breaches_ = 0;
    breach_by_stage_.fill(0);
}

}  // namespace mvreju::serve
