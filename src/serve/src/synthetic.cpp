#include "mvreju/serve/synthetic.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <queue>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "mvreju/obs/flight_recorder.hpp"
#include "mvreju/obs/metrics.hpp"
#include "mvreju/obs/profiler.hpp"
#include "mvreju/serve/batcher.hpp"
#include "mvreju/serve/fleet_stats.hpp"
#include "mvreju/serve/trace.hpp"
#include "mvreju/util/rng.hpp"

namespace mvreju::serve {

namespace {

/// FNV-1a, the repo's standard checksum for determinism gates.
struct Fnv1a {
    std::uint64_t hash = 1469598103934665603ull;
    void add_bytes(const void* data, std::size_t n) {
        const auto* p = static_cast<const unsigned char*>(data);
        for (std::size_t i = 0; i < n; ++i) {
            hash ^= p[i];
            hash *= 1099511628211ull;
        }
    }
    template <typename T>
    void add(T value) {
        add_bytes(&value, sizeof value);
    }
};

struct Arrival {
    std::uint64_t t_us = 0;
    int stream = 0;
    int frame = 0;
    /// Min-heap order; ties break on (stream, frame) for determinism.
    bool operator>(const Arrival& other) const {
        if (t_us != other.t_us) return t_us > other.t_us;
        if (stream != other.stream) return stream > other.stream;
        return frame > other.frame;
    }
};

struct Outcome {
    std::uint8_t status = 0;  ///< ResponseStatus numeric values
    std::uint8_t degraded = 0;
    std::int32_t label = -1;
    std::uint16_t agreeing = 0;
    std::uint32_t functional = 0;
};

struct InFlight {
    int stream = 0;
    int frame = 0;
    core::FramePlan plan;
    std::vector<std::optional<int>> proposals;
    int remaining = 0;
    std::uint64_t arrival_us = 0;
    std::uint64_t completed_us = 0;
    bool degraded = false;
    FrameTrace trace;
};

class FleetRun {
public:
    FleetRun(const ModelSet& set, const FleetOptions& options, FleetStats* stats)
        : set_(set),
          options_(options),
          stats_(stats),
          overload_(options.overload),
          // now_fn stays null: the fleet costs inference with its own
          // virtual service model and substitutes those stamps itself.
          batcher_(DynamicBatcher::Options{options.batch_max,
                                           options.batch_delay_us,
                                           options.infer_threads,
                                           set.input_shape,
                                           {}}),
          outcomes_(static_cast<std::size_t>(options.streams) *
                    static_cast<std::size_t>(options.frames_per_stream)) {
        Session::Options session_options;
        session_options.health = options.health;
        session_options.scheme = options.scheme;
        sessions_.reserve(static_cast<std::size_t>(options.streams));
        const util::Rng base(options.seed);
        period_us_ = 1e6 / options.frame_rate_hz;
        for (int s = 0; s < options.streams; ++s) {
            sessions_.emplace_back(static_cast<std::uint64_t>(s), set,
                                   session_options);
            util::Rng rng = base.split(static_cast<std::uint64_t>(s));
            // Per-stream phase offset desynchronises the fleet; per-frame
            // samples follow from the same substream, so any run with these
            // options sees byte-identical inputs in byte-identical order.
            const double phase = rng.uniform(0.0, period_us_);
            streams_.push_back(StreamState{std::move(rng), phase});
            arrivals_.push(Arrival{stamp_us(phase), s, 0});
        }
    }

    FleetResult run() {
        const auto wall_start = std::chrono::steady_clock::now();
        while (!arrivals_.empty()) {
            const Arrival next = arrivals_.top();
            // Flush every batch whose max-delay deadline falls before the
            // next arrival: virtual time advances to the deadline.
            const auto deadline = batcher_.next_deadline_us();
            if (deadline && *deadline <= next.t_us) {
                flush_time_us_ = *deadline;
                batcher_.flush_due(*deadline);
                continue;
            }
            arrivals_.pop();
            handle_arrival(next);
        }
        if (batcher_.pending() > 0) {
            flush_time_us_ = last_arrival_us_;
            batcher_.flush_all(last_arrival_us_);
        }
        const auto wall_end = std::chrono::steady_clock::now();

        FleetResult result = tally();
        result.wall_ms =
            std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
        return result;
    }

private:
    struct StreamState {
        util::Rng rng;
        double phase_us = 0.0;
    };

    static std::uint64_t stamp_us(double t) {
        return static_cast<std::uint64_t>(std::llround(t));
    }

    void handle_arrival(const Arrival& arrival) {
        // Profiler stage tag: everything between arrival and submit is
        // "parse" work (sample synthesis, planning); the batcher's own
        // "infer" scope takes over inside a synchronous flush, and
        // finalize's "vote" scope covers completion — so the bench's CPU
        // attribution exercises the same tag set as the socket server.
        MVREJU_PROFILE_STAGE(profile_scope, "parse");
        last_arrival_us_ = arrival.t_us;
        StreamState& stream = streams_[static_cast<std::size_t>(arrival.stream)];
        if (arrival.frame + 1 < options_.frames_per_stream) {
            const double t =
                stream.phase_us + (arrival.frame + 1) * period_us_;
            arrivals_.push(Arrival{stamp_us(t), arrival.stream, arrival.frame + 1});
        }

        // The sample is drawn *before* any shed decision so that the
        // per-stream random sequence — and therefore every later frame — is
        // independent of load, batching and shedding.
        sample_.resize(set_.sample_size());
        for (float& v : sample_) v = static_cast<float>(stream.rng.uniform());

        Session& session = sessions_[static_cast<std::size_t>(arrival.stream)];
        const double t_s = static_cast<double>(arrival.t_us) * 1e-6;
        core::FramePlan plan = session.begin_frame(t_s);
        const std::uint64_t t_ns = arrival.t_us * 1000;

        Outcome& outcome =
            outcomes_[static_cast<std::size_t>(arrival.stream) *
                          static_cast<std::size_t>(options_.frames_per_stream) +
                      static_cast<std::size_t>(arrival.frame)];
        outcome.functional = static_cast<std::uint32_t>(plan.functional_modules);

        if (plan.functional_modules == 0) {
            const SessionResult result = session.complete_frame(
                plan, std::vector<std::optional<int>>(plan.states.size()));
            outcome.status = 2;  // no_output
            outcome.agreeing = static_cast<std::uint16_t>(result.agreeing);
            overload_.record(false);
            if (stats_ != nullptr) {
                FrameObservation fo;
                fo.stream = static_cast<std::uint32_t>(arrival.stream);
                fo.frame = static_cast<std::uint64_t>(arrival.frame);
                fo.trace.stamp(TracePoint::rx, arrival.t_us);
                fo.trace.stamp(TracePoint::vote, arrival.t_us);
                fo.trace.stamp(TracePoint::tx, arrival.t_us);
                fo.status = ResponseStatus::no_output;
                stats_->observe(fo, arrival.t_us);
            }
            return;
        }

        if (inflight_.size() >= options_.max_inflight) {
            // Hard cap: refuse outright, count it as a breach so the
            // controller keeps shedding while the backlog drains.
            static obs::Counter& dropped =
                obs::metrics().counter("serve.shed.dropped");
            dropped.add(1);
            MVREJU_OBS_EVENT_AT(t_ns, obs::EventKind::load_shed, frame_seq_,
                                static_cast<std::uint32_t>(arrival.stream), 2.0,
                                overload_.breach_fraction());
            outcome.status = 3;  // shed
            overload_.record(true);
            ++frame_seq_;
            if (stats_ != nullptr) {
                FrameObservation fo;
                fo.stream = static_cast<std::uint32_t>(arrival.stream);
                fo.frame = static_cast<std::uint64_t>(arrival.frame);
                fo.trace.stamp(TracePoint::rx, arrival.t_us);
                fo.trace.stamp(TracePoint::tx, arrival.t_us);
                fo.status = ResponseStatus::shed;
                stats_->observe(fo, arrival.t_us);
            }
            return;
        }

        const bool degrade = options_.shedding && overload_.overloaded();
        const int primary = Session::primary_version(plan);

        // Resolve the models up front (mirrors server.cpp): once the first
        // submit happens a full batch may flush synchronously, run on_label,
        // and erase this frame — so nothing below may touch inflight_[key]
        // across a submit (operator[] would default-insert a leaked entry).
        std::vector<std::tuple<std::size_t, const ml::Sequential*,
                               const num::KernelBackend*>>
            to_submit;
        for (std::size_t m = 0; m < plan.states.size(); ++m) {
            if (degrade && static_cast<int>(m) != primary) continue;
            const ml::Sequential* model = session.model_for(m, plan.states[m]);
            if (model != nullptr)
                to_submit.emplace_back(m, model, &session.backend_for(m));
        }

        const std::uint64_t key = frame_seq_++;
        InFlight& inflight = inflight_[key];
        inflight.stream = arrival.stream;
        inflight.frame = arrival.frame;
        inflight.proposals.assign(plan.states.size(), std::nullopt);
        inflight.arrival_us = arrival.t_us;
        inflight.degraded = degrade;
        inflight.remaining = static_cast<int>(to_submit.size());
        inflight.plan = std::move(plan);
        // Virtual-time trace: arrival is both rx and enqueue (parsing is
        // instantaneous in the synthetic model); the batcher/engine stamps
        // land in on_label, the vote/tx stamps in finalize.
        inflight.trace.stamp(TracePoint::rx, arrival.t_us);
        inflight.trace.stamp(TracePoint::enqueue, arrival.t_us);
        if (degrade) {
            static obs::Counter& shed = obs::metrics().counter("serve.shed.degraded");
            shed.add(1);
            MVREJU_OBS_EVENT_AT(t_ns, obs::EventKind::load_shed, key,
                                static_cast<std::uint32_t>(arrival.stream), 1.0,
                                overload_.breach_fraction());
        }

        if (to_submit.empty()) {
            // Every eligible module was non-functional: vote over an empty
            // proposal set right away instead of leaking the entry.
            inflight.completed_us = arrival.t_us;
            finalize(inflight);
            inflight_.erase(key);
            return;
        }

        // A full queue flushes inside submit(): stamp the flush time first.
        flush_time_us_ = arrival.t_us;
        for (const auto& [m, model, backend] : to_submit) {
            batcher_.submit(
                model, sample_.data(), arrival.t_us,
                [this, key, m = m](int label, const BatchStamp& stamp) {
                    on_label(key, m, label, stamp);
                },
                backend);
        }
    }

    void on_label(std::uint64_t key, std::size_t module, int label,
                  const BatchStamp& stamp) {
        // Cost the batch once per flush: it queues behind the previous one
        // and occupies the virtual engine for base + B * per_frame.
        if (stamp.seq != last_stamp_seq_) {
            last_stamp_seq_ = stamp.seq;
            const double busy = options_.service_base_us +
                                options_.service_per_frame_us * stamp.size;
            flush_start_us_ = std::max(flush_time_us_, engine_busy_us_);
            engine_busy_us_ = flush_start_us_ + stamp_us(busy);
            ++flushes_;
            flushed_frames_ += stamp.size;
        }
        auto it = inflight_.find(key);
        if (it == inflight_.end()) return;
        InFlight& inflight = it->second;
        inflight.proposals[module] = label;
        inflight.completed_us = std::max(inflight.completed_us, engine_busy_us_);
        // Monotone stamps: a frame fanned over several flushes keeps the
        // boundaries of the last batch that carried one of its versions —
        // formed is the batcher's virtual flush time, the infer interval is
        // the virtual engine occupancy computed above.
        inflight.trace.stamp(TracePoint::formed, stamp.formed_us);
        inflight.trace.stamp(TracePoint::infer_start, flush_start_us_);
        inflight.trace.stamp(TracePoint::infer_end, engine_busy_us_);
        if (--inflight.remaining == 0) {
            finalize(inflight);
            inflight_.erase(it);
        }
    }

    void finalize(InFlight& inflight) {
        MVREJU_PROFILE_STAGE(profile_scope, "vote");
        Session& session = sessions_[static_cast<std::size_t>(inflight.stream)];
        const SessionResult result =
            session.complete_frame(inflight.plan, std::move(inflight.proposals));

        Outcome& outcome =
            outcomes_[static_cast<std::size_t>(inflight.stream) *
                          static_cast<std::size_t>(options_.frames_per_stream) +
                      static_cast<std::size_t>(inflight.frame)];
        outcome.status = static_cast<std::uint8_t>(result.kind);
        outcome.degraded = inflight.degraded ? 1 : 0;
        outcome.label = result.label;
        outcome.agreeing = static_cast<std::uint16_t>(result.agreeing);

        const double latency_ms =
            static_cast<double>(inflight.completed_us - inflight.arrival_us) / 1000.0;
        latencies_ms_.push_back(latency_ms);
        const bool breach = latency_ms > options_.slo_budget_ms;
        if (breach) {
            ++slo_breaches_;
            static obs::Counter& breaches = obs::metrics().counter("serve.slo_breach");
            breaches.add(1);
            MVREJU_OBS_EVENT_AT(inflight.completed_us * 1000,
                                obs::EventKind::slo_breach,
                                static_cast<std::uint64_t>(inflight.frame),
                                static_cast<std::uint32_t>(inflight.stream),
                                latency_ms, options_.slo_budget_ms);
        }
        overload_.record(breach);

        if (stats_ != nullptr) {
            // Voting and response hand-off are instantaneous in virtual
            // time, so both close at the completion stamp.
            inflight.trace.stamp(TracePoint::vote, inflight.completed_us);
            inflight.trace.stamp(TracePoint::tx, inflight.completed_us);
            FrameObservation fo;
            fo.stream = static_cast<std::uint32_t>(inflight.stream);
            fo.frame = static_cast<std::uint64_t>(inflight.frame);
            fo.trace = inflight.trace;
            fo.status = static_cast<ResponseStatus>(result.kind);
            fo.degraded = inflight.degraded;
            fo.latency_ms = latency_ms;
            fo.slo_budget_ms = options_.slo_budget_ms;
            stats_->observe(fo, inflight.completed_us);
        }
    }

    [[nodiscard]] FleetResult tally() const {
        FleetResult result;
        result.frames = outcomes_.size();
        Fnv1a fnv;
        for (const Outcome& o : outcomes_) {
            switch (o.status) {
                case 0: ++result.decided; break;
                case 1: ++result.skipped; break;
                case 2: ++result.no_output; break;
                case 3: ++result.dropped; break;
                default: break;
            }
            result.degraded += o.degraded;
            fnv.add(o.status);
            fnv.add(o.degraded);
            fnv.add(o.label);
            fnv.add(o.agreeing);
            fnv.add(o.functional);
        }
        result.output_hash = fnv.hash;
        result.slo_breaches = slo_breaches_;
        result.batch_flushes = flushes_;
        result.mean_batch =
            flushes_ == 0 ? 0.0
                          : static_cast<double>(flushed_frames_) /
                                static_cast<double>(flushes_);
        result.shed_rate = result.frames == 0
                               ? 0.0
                               : static_cast<double>(result.degraded + result.dropped) /
                                     static_cast<double>(result.frames);
        std::vector<double> sorted = latencies_ms_;
        std::sort(sorted.begin(), sorted.end());
        auto percentile = [&sorted](double p) {
            if (sorted.empty()) return 0.0;
            const auto index = static_cast<std::size_t>(
                p * static_cast<double>(sorted.size() - 1) + 0.5);
            return sorted[std::min(index, sorted.size() - 1)];
        };
        result.p50_virtual_ms = percentile(0.50);
        result.p99_virtual_ms = percentile(0.99);
        return result;
    }

    const ModelSet& set_;
    const FleetOptions& options_;
    FleetStats* stats_ = nullptr;
    OverloadControl overload_;
    DynamicBatcher batcher_;
    std::vector<Session> sessions_;
    std::vector<StreamState> streams_;
    std::priority_queue<Arrival, std::vector<Arrival>, std::greater<>> arrivals_;
    std::unordered_map<std::uint64_t, InFlight> inflight_;
    std::vector<Outcome> outcomes_;
    std::vector<double> latencies_ms_;
    std::vector<float> sample_;
    double period_us_ = 0.0;
    std::uint64_t frame_seq_ = 0;
    std::uint64_t last_arrival_us_ = 0;
    std::uint64_t flush_time_us_ = 0;
    std::uint64_t flush_start_us_ = 0;
    std::uint64_t engine_busy_us_ = 0;
    std::uint64_t last_stamp_seq_ = 0;
    std::uint64_t slo_breaches_ = 0;
    std::uint64_t flushes_ = 0;
    std::uint64_t flushed_frames_ = 0;
};

}  // namespace

FleetResult run_fleet(const ModelSet& set, const FleetOptions& options,
                      FleetStats* stats) {
    if (stats != nullptr) stats->set_backend(set.backend_name);
    FleetRun run(set, options, stats);
    return run.run();
}

}  // namespace mvreju::serve
