#include "mvreju/serve/session.hpp"

#include <stdexcept>

#include "mvreju/fi/inject.hpp"

namespace mvreju::serve {

namespace {

core::MultiVersionSystem<ml::Tensor, int> make_system(
    std::uint64_t stream_id, const ModelSet& set, const Session::Options& options) {
    core::HealthEngineConfig health = options.health;
    health.modules = static_cast<int>(set.pointers.size());
    // Independent per-stream health processes from one base seed: streams
    // age on their own trajectories, deterministically.
    health.seed = health.seed + stream_id;
    return {set.behaviours, core::Voter<int>{options.scheme},
            core::HealthEngine{health}};
}

}  // namespace

ModelSet make_model_set(const ModelSetConfig& config) {
    ModelSet set;
    const num::KernelBackend& fleet_backend = num::select_backend(config.backend);
    auto add_version = [&set, &fleet_backend](ml::Sequential model,
                                              std::uint64_t inject_seed) {
        auto pristine = std::make_unique<ml::Sequential>(std::move(model));
        // Load-time binding: every inference through this version — inline
        // predict(), behaviours, batched flushes — dispatches through the
        // fleet backend without per-call branching.
        pristine->bind_backend(&fleet_backend);
        auto twin = std::make_unique<ml::Sequential>(*pristine);
        // Same fault model as the paper's classifiers: one random weight of
        // the first layer overwritten with uniform([-10, 30)).
        (void)fi::random_weight_inj(*twin, 0, -10.0f, 30.0f, inject_seed);
        set.pointers.healthy.push_back(pristine.get());
        set.pointers.compromised.push_back(twin.get());
        set.pointers.backends.push_back(&fleet_backend);
        set.storage.push_back(std::move(pristine));
        set.storage.push_back(std::move(twin));
    };
    add_version(ml::make_tiny_lenet(config.channels, config.side, config.classes,
                                    config.seed),
                config.seed + 10);
    add_version(ml::make_mini_alexnet(config.channels, config.side, config.classes,
                                      config.seed + 1),
                config.seed + 11);
    add_version(ml::make_micro_resnet(config.channels, config.side, config.classes,
                                      config.seed + 2),
                config.seed + 12);

    if (config.int8_replica) {
        // The quantized replica owns no weights: it is version 0's float32
        // parameters (and compromised twin) dispatched through the int8
        // kernels. Diversity comes from the arithmetic, not the weights —
        // and sharing one Sequential across two backends is exactly the
        // aliasing the batcher's (model, backend) queue key exists for.
        const num::KernelBackend* int8 = num::find_backend("int8");
        set.pointers.healthy.push_back(set.pointers.healthy[0]);
        set.pointers.compromised.push_back(set.pointers.compromised[0]);
        set.pointers.backends.push_back(int8);
    }

    std::vector<core::VersionSpec<ml::Tensor, int>> specs;
    for (std::size_t m = 0; m < set.pointers.size(); ++m) {
        const ml::Sequential* healthy = set.pointers.healthy[m];
        const ml::Sequential* compromised = set.pointers.compromised[m];
        const num::KernelBackend* kb = set.pointers.backends[m];
        specs.push_back(core::VersionSpec<ml::Tensor, int>{
            [healthy, kb](const ml::Tensor& x) { return healthy->predict(x, *kb); },
            [compromised, kb](const ml::Tensor& x) {
                return compromised->predict(x, *kb);
            }});
    }
    set.behaviours = std::make_shared<const ModelSet::Pool>(std::move(specs));
    set.input_shape = {config.channels, config.side, config.side};
    set.backend_name = std::string(fleet_backend.name());
    return set;
}

Session::Session(std::uint64_t stream_id, const ModelSet& set,
                 const Options& options)
    : id_(stream_id),
      models_(&set.pointers),
      system_(make_system(stream_id, set, options)) {
    if (set.pointers.size() == 0)
        throw std::invalid_argument("Session: empty model set");
}

SessionResult Session::complete_frame(const core::FramePlan& plan,
                                      std::vector<std::optional<int>> proposals) {
    const core::FrameResult<int> frame =
        system_.complete_frame(plan, std::move(proposals));
    SessionResult result;
    result.kind = frame.vote.kind;
    result.label = frame.vote.value.value_or(-1);
    result.agreeing = frame.vote.agreeing;
    result.functional_modules = frame.functional_modules;
    return result;
}

int Session::primary_version(const core::FramePlan& plan) {
    for (std::size_t m = 0; m < plan.states.size(); ++m)
        if (core::is_functional(plan.states[m])) return static_cast<int>(m);
    return -1;
}

SessionResult Session::process(double time, const ml::Tensor& input) {
    const core::FramePlan plan = begin_frame(time);
    std::vector<std::optional<int>> proposals;
    proposals.reserve(plan.states.size());
    for (std::size_t m = 0; m < plan.states.size(); ++m) {
        const ml::Sequential* model = model_for(m, plan.states[m]);
        if (model == nullptr)
            proposals.emplace_back(std::nullopt);
        else
            proposals.emplace_back(model->predict(input, backend_for(m)));
    }
    return complete_frame(plan, std::move(proposals));
}

}  // namespace mvreju::serve
