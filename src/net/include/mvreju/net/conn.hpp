#pragma once

// Buffered non-blocking connection on an EventLoop. A Conn owns its fd,
// accumulates incoming bytes into rx() and queues outgoing bytes through
// send(), toggling writable interest only while a backlog exists. Lifetime
// is shared_ptr-based: the loop callback keeps the Conn alive until it is
// closed, so a callback that closes its own connection is safe.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "mvreju/net/event_loop.hpp"

namespace mvreju::net {

class Conn : public std::enable_shared_from_this<Conn> {
public:
    /// New bytes were appended to rx(); consume what you can.
    using DataFn = std::function<void(Conn&)>;
    /// The peer closed or an I/O error occurred; the fd is already closed.
    /// Invoked at most once, never re-entered from inside close().
    using CloseFn = std::function<void(Conn&)>;

    /// Wrap an already-open fd (made non-blocking here) and register it.
    [[nodiscard]] static std::shared_ptr<Conn> adopt(EventLoop& loop, int fd,
                                                     DataFn on_data,
                                                     CloseFn on_close = nullptr);
    ~Conn();
    Conn(const Conn&) = delete;
    Conn& operator=(const Conn&) = delete;

    /// Incoming byte buffer; the consumer erases what it has processed.
    [[nodiscard]] std::string& rx() noexcept { return rx_; }

    /// Queue bytes for transmission; flushes as much as the socket accepts
    /// now and arms writable interest for the rest.
    void send(const void* data, std::size_t n);
    void send(const std::string& data) { send(data.data(), data.size()); }

    /// Close after the transmit queue drains (immediately when empty). No
    /// further on_data callbacks fire; on_close fires when the fd closes.
    void close_after_send();
    /// Close now, discarding any queued bytes.
    void close();

    [[nodiscard]] bool closed() const noexcept { return fd_ < 0; }
    [[nodiscard]] int fd() const noexcept { return fd_; }
    [[nodiscard]] std::size_t tx_pending() const noexcept { return tx_.size() - tx_offset_; }

    /// Application tag (e.g. the owning session id); the loop never reads it.
    std::uint64_t tag = 0;

private:
    Conn(EventLoop& loop, int fd, DataFn on_data, CloseFn on_close);
    void on_ready(std::uint32_t ready);
    void flush_tx();
    void update_interest();

    EventLoop& loop_;
    int fd_;
    DataFn on_data_;
    CloseFn on_close_;
    std::string rx_;
    std::string tx_;
    std::size_t tx_offset_ = 0;  ///< bytes of tx_ already written
    bool draining_ = false;      ///< close_after_send() requested
    bool want_write_ = false;
};

}  // namespace mvreju::net
