#pragma once

// Listening TCP socket on an EventLoop: binds, listens, and invokes an
// accept callback with each new (already non-blocking) connection fd. The
// Listener owns the listening fd; accepted fds belong to the callback
// (typically wrapped in a net::Conn immediately).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "mvreju/net/event_loop.hpp"

namespace mvreju::net {

struct ListenerOptions {
    std::string host = "127.0.0.1";  ///< dotted-quad IPv4 address to bind
    int port = 0;                    ///< 0 picks an ephemeral port
    int backlog = 16;                ///< listen(2) queue depth
};

class Listener {
public:
    /// Called once per accepted connection with a non-blocking fd.
    using AcceptFn = std::function<void(int fd)>;

    /// Bind + listen + register with `loop`. Returns nullptr on failure and,
    /// when `error` is non-null, a human-readable reason.
    [[nodiscard]] static std::unique_ptr<Listener> open(EventLoop& loop,
                                                        const ListenerOptions& options,
                                                        AcceptFn on_accept,
                                                        std::string* error = nullptr);

    ~Listener();
    Listener(const Listener&) = delete;
    Listener& operator=(const Listener&) = delete;

    /// The actually bound port (resolves an ephemeral request).
    [[nodiscard]] int port() const noexcept { return port_; }
    [[nodiscard]] int fd() const noexcept { return fd_; }

private:
    Listener(EventLoop& loop, int fd, int port, AcceptFn on_accept);
    void on_readable();

    EventLoop& loop_;
    int fd_;
    int port_;
    AcceptFn on_accept_;
};

}  // namespace mvreju::net
