#pragma once

// Non-blocking socket event loop extracted from the obs exporter's private
// poll() machinery so every network-facing subsystem (the telemetry
// exporter, the multi-stream serving layer) shares one readiness engine.
//
// Design rules:
//  - Single-owner: one thread constructs the loop and drives poll_once() /
//    run(); callbacks execute on that thread. The only cross-thread entry
//    point is stop(), which is async-signal-ish safe (an atomic flag plus a
//    self-pipe write) so another thread can wake a parked loop.
//  - Backend: epoll on Linux, poll everywhere else. The poll backend can be
//    forced (Backend::poll) so tests exercise both code paths on Linux.
//  - Callbacks may add or remove fds freely, including removing themselves;
//    dispatch re-validates registration before every invocation.
//
// The loop never owns file descriptors: callers close what they opened
// (Listener and Conn wrap that ownership).

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace mvreju::net {

/// Readiness interest / result bits (backend-neutral).
inline constexpr std::uint32_t kReadable = 1u << 0;
inline constexpr std::uint32_t kWritable = 1u << 1;
/// Error/hangup, always reported even when not requested.
inline constexpr std::uint32_t kError = 1u << 2;

class EventLoop {
public:
    /// Invoked with the ready bitmask for the registered fd.
    using IoCallback = std::function<void(std::uint32_t ready)>;

    enum class Backend {
        automatic,  ///< epoll on Linux, poll elsewhere
        poll,       ///< force the portable poll() backend
    };

    explicit EventLoop(Backend backend = Backend::automatic);
    ~EventLoop();
    EventLoop(const EventLoop&) = delete;
    EventLoop& operator=(const EventLoop&) = delete;

    /// Register `fd` for the `interest` bits. Returns false when the fd is
    /// already registered or the backend rejects it.
    bool add(int fd, std::uint32_t interest, IoCallback callback);
    /// Change the interest set of a registered fd.
    bool modify(int fd, std::uint32_t interest);
    /// Unregister; safe to call from inside the fd's own callback.
    void remove(int fd);
    [[nodiscard]] bool watching(int fd) const { return entries_.contains(fd); }
    [[nodiscard]] std::size_t watched() const noexcept { return entries_.size(); }

    /// Wait up to `timeout_ms` (-1 = indefinitely) and dispatch callbacks
    /// for every ready fd. Returns the number of callbacks dispatched, 0 on
    /// timeout, -1 on a backend error other than EINTR.
    int poll_once(int timeout_ms);

    /// poll_once(tick_ms) until stop() is observed.
    void run(int tick_ms = 200);

    /// Request run() to return. Callable from any thread; wakes a parked
    /// loop immediately via the self-pipe.
    void stop();
    /// Clear a previous stop() so the loop can be reused.
    void reset_stop() { stop_requested_.store(false, std::memory_order_relaxed); }
    [[nodiscard]] bool stop_requested() const noexcept {
        return stop_requested_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] bool using_epoll() const noexcept { return epoll_fd_ >= 0; }

private:
    struct Entry {
        std::uint32_t interest = 0;
        IoCallback callback;
        std::uint64_t generation = 0;  ///< guards against fd-number reuse
    };

    /// One ready fd with the generation of the entry that was registered
    /// when readiness was captured, so dispatch can detect fd-number reuse.
    struct ReadyEvent {
        int fd = -1;
        std::uint32_t bits = 0;
        std::uint64_t generation = 0;
    };

    bool backend_add(int fd, std::uint32_t interest);
    bool backend_modify(int fd, std::uint32_t interest);
    void backend_remove(int fd);
    void dispatch(const std::vector<ReadyEvent>& ready);

    std::unordered_map<int, Entry> entries_;
    std::uint64_t generation_ = 0;
    int epoll_fd_ = -1;           ///< -1 when on the poll backend
    int wake_pipe_[2] = {-1, -1}; ///< self-pipe: stop() writes, loop drains
    std::atomic<bool> stop_requested_{false};
};

}  // namespace mvreju::net
