#include "mvreju/net/listener.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace mvreju::net {

namespace {

void set_nonblocking(int fd) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
}

}  // namespace

std::unique_ptr<Listener> Listener::open(EventLoop& loop, const ListenerOptions& options,
                                         AcceptFn on_accept, std::string* error) {
    auto fail = [&](const std::string& why) -> std::unique_ptr<Listener> {
        if (error) *error = why;
        return nullptr;
    };
    if (!on_accept) return fail("no accept callback");
    if (options.port < 0 || options.port > 65535)
        return fail("bad port " + std::to_string(options.port));
    if (options.backlog < 1)
        return fail("bad backlog " + std::to_string(options.backlog));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options.port));
    if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1)
        return fail("bad IPv4 address '" + options.host + "'");

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return fail(std::string("socket(): ") + std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, options.backlog) != 0) {
        const std::string why = "cannot bind " + options.host + ":" +
                                std::to_string(options.port) + ": " +
                                std::strerror(errno);
        ::close(fd);
        return fail(why);
    }
    set_nonblocking(fd);

    int bound_port = options.port;
    socklen_t addr_len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) == 0)
        bound_port = ntohs(addr.sin_port);

    auto listener = std::unique_ptr<Listener>(
        new Listener(loop, fd, bound_port, std::move(on_accept)));
    if (!loop.add(fd, kReadable,
                  [raw = listener.get()](std::uint32_t) { raw->on_readable(); })) {
        return fail("event loop refused the listening fd");
    }
    return listener;
}

Listener::Listener(EventLoop& loop, int fd, int port, AcceptFn on_accept)
    : loop_(loop), fd_(fd), port_(port), on_accept_(std::move(on_accept)) {}

Listener::~Listener() {
    loop_.remove(fd_);
    ::close(fd_);
}

void Listener::on_readable() {
    // Accept everything queued: with edge-ish readiness semantics one event
    // may announce several pending connections.
    for (;;) {
        const int client = ::accept(fd_, nullptr, nullptr);
        if (client < 0) {
            // Same EINTR discipline as Conn's send/recv paths: a signal
            // (SIGPROF from the sampling profiler most likely — accept() is
            // not restarted by SA_RESTART on all kernels) must not end the
            // drain early, or connections already queued behind the
            // interrupted call would wait for a wakeup that never comes.
            if (errno == EINTR) continue;
            return;  // EAGAIN/EWOULDBLOCK or transient error
        }
        set_nonblocking(client);
        on_accept_(client);
    }
}

}  // namespace mvreju::net
