#include "mvreju/net/event_loop.hpp"

#include <cerrno>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#define MVREJU_NET_HAVE_EPOLL 1
#endif

namespace mvreju::net {

namespace {

#if MVREJU_NET_HAVE_EPOLL
std::uint32_t to_epoll(std::uint32_t interest) {
    std::uint32_t ev = 0;
    if (interest & kReadable) ev |= EPOLLIN;
    if (interest & kWritable) ev |= EPOLLOUT;
    return ev;
}

std::uint32_t from_epoll(std::uint32_t ev) {
    std::uint32_t ready = 0;
    if (ev & (EPOLLIN | EPOLLPRI)) ready |= kReadable;
    if (ev & EPOLLOUT) ready |= kWritable;
    if (ev & (EPOLLERR | EPOLLHUP)) ready |= kError | kReadable;
    return ready;
}
#endif

short to_poll(std::uint32_t interest) {
    short ev = 0;
    if (interest & kReadable) ev |= POLLIN;
    if (interest & kWritable) ev |= POLLOUT;
    return ev;
}

std::uint32_t from_poll(short revents) {
    std::uint32_t ready = 0;
    if (revents & (POLLIN | POLLPRI)) ready |= kReadable;
    if (revents & POLLOUT) ready |= kWritable;
    // POLLHUP/POLLERR/POLLNVAL: surface as error *and* readable so byte-stream
    // consumers observe EOF through their normal read path.
    if (revents & (POLLERR | POLLHUP | POLLNVAL)) ready |= kError | kReadable;
    return ready;
}

}  // namespace

EventLoop::EventLoop(Backend backend) {
#if MVREJU_NET_HAVE_EPOLL
    if (backend == Backend::automatic) epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
#else
    (void)backend;
#endif
    if (::pipe(wake_pipe_) == 0) {
        // Self-pipe: stop() writes a token, the loop drains. Both ends are
        // non-blocking so neither a stop() burst nor the drain can park.
        for (int fd : wake_pipe_)
            ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
        add(wake_pipe_[0], kReadable, [this](std::uint32_t) {
            char sink[64];
            while (::read(wake_pipe_[0], sink, sizeof sink) > 0) {
            }
        });
    }
}

EventLoop::~EventLoop() {
#if MVREJU_NET_HAVE_EPOLL
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
#endif
    for (int fd : wake_pipe_)
        if (fd >= 0) ::close(fd);
}

bool EventLoop::backend_add(int fd, std::uint32_t interest) {
#if MVREJU_NET_HAVE_EPOLL
    if (epoll_fd_ >= 0) {
        epoll_event ev{};
        ev.events = to_epoll(interest);
        ev.data.fd = fd;
        return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0;
    }
#endif
    (void)fd;
    (void)interest;
    return true;  // poll backend builds its fd set per call
}

bool EventLoop::backend_modify(int fd, std::uint32_t interest) {
#if MVREJU_NET_HAVE_EPOLL
    if (epoll_fd_ >= 0) {
        epoll_event ev{};
        ev.events = to_epoll(interest);
        ev.data.fd = fd;
        return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
    }
#endif
    (void)fd;
    (void)interest;
    return true;
}

void EventLoop::backend_remove(int fd) {
#if MVREJU_NET_HAVE_EPOLL
    if (epoll_fd_ >= 0) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
    (void)fd;
}

bool EventLoop::add(int fd, std::uint32_t interest, IoCallback callback) {
    if (fd < 0 || !callback || entries_.contains(fd)) return false;
    if (!backend_add(fd, interest)) return false;
    entries_.emplace(fd, Entry{interest, std::move(callback), ++generation_});
    return true;
}

bool EventLoop::modify(int fd, std::uint32_t interest) {
    auto it = entries_.find(fd);
    if (it == entries_.end()) return false;
    if (!backend_modify(fd, interest)) return false;
    it->second.interest = interest;
    return true;
}

void EventLoop::remove(int fd) {
    auto it = entries_.find(fd);
    if (it == entries_.end()) return;
    backend_remove(fd);
    entries_.erase(it);
}

void EventLoop::dispatch(const std::vector<ReadyEvent>& ready) {
    for (const ReadyEvent& event : ready) {
        // A previous callback may have removed this fd — or closed it and a
        // later callback reused the number (accept handing out the same fd).
        // The generation stamped when readiness was captured detects both:
        // invoke only the entry that was registered when the backend
        // reported the fd ready, never a newer registration.
        auto it = entries_.find(event.fd);
        if (it == entries_.end() || it->second.generation != event.generation)
            continue;
        // Copy the callback: it may remove itself (erasing the entry) while
        // running.
        IoCallback callback = it->second.callback;
        callback(event.bits);
    }
}

int EventLoop::poll_once(int timeout_ms) {
#if MVREJU_NET_HAVE_EPOLL
    if (epoll_fd_ >= 0) {
        epoll_event events[64];
        const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
        if (n < 0) return errno == EINTR ? 0 : -1;
        std::vector<ReadyEvent> ready;
        ready.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;  // copy out of the packed union
            const auto it = entries_.find(fd);
            if (it == entries_.end()) continue;  // unregistered straggler
            ready.push_back(
                ReadyEvent{fd, from_epoll(events[i].events), it->second.generation});
        }
        dispatch(ready);
        return n;
    }
#endif
    std::vector<pollfd> fds;
    fds.reserve(entries_.size());
    for (const auto& [fd, entry] : entries_)
        fds.push_back(pollfd{fd, to_poll(entry.interest), 0});
    const int n = ::poll(fds.data(), fds.size(), timeout_ms);
    if (n < 0) return errno == EINTR ? 0 : -1;
    if (n == 0) return 0;
    std::vector<ReadyEvent> ready;
    ready.reserve(static_cast<std::size_t>(n));
    for (const pollfd& p : fds)
        if (p.revents != 0)
            ready.push_back(
                ReadyEvent{p.fd, from_poll(p.revents), entries_.at(p.fd).generation});
    dispatch(ready);
    return n;
}

void EventLoop::run(int tick_ms) {
    while (!stop_requested()) {
        if (poll_once(tick_ms) < 0) break;
    }
}

void EventLoop::stop() {
    stop_requested_.store(true, std::memory_order_relaxed);
    if (wake_pipe_[1] >= 0) {
        const char token = 's';
        [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &token, 1);
    }
}

}  // namespace mvreju::net
