#include "mvreju/net/conn.hpp"

#include <cerrno>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

namespace mvreju::net {

namespace {
constexpr std::size_t kReadChunk = 16 * 1024;
}

std::shared_ptr<Conn> Conn::adopt(EventLoop& loop, int fd, DataFn on_data,
                                  CloseFn on_close) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    auto conn = std::shared_ptr<Conn>(
        new Conn(loop, fd, std::move(on_data), std::move(on_close)));
    // The loop's callback co-owns the Conn: it stays alive while registered,
    // even if the application drops its handle.
    if (!loop.add(fd, kReadable, [conn](std::uint32_t ready) { conn->on_ready(ready); })) {
        ::close(fd);
        conn->fd_ = -1;
        return nullptr;
    }
    return conn;
}

Conn::Conn(EventLoop& loop, int fd, DataFn on_data, CloseFn on_close)
    : loop_(loop), fd_(fd), on_data_(std::move(on_data)), on_close_(std::move(on_close)) {}

Conn::~Conn() {
    if (fd_ >= 0) {
        loop_.remove(fd_);
        ::close(fd_);
        fd_ = -1;
    }
}

void Conn::close() {
    if (fd_ < 0) return;
    loop_.remove(fd_);
    ::close(fd_);
    fd_ = -1;
    tx_.clear();
    tx_offset_ = 0;
    if (on_close_) {
        // Steal the callback first so a close() from inside on_close_ (or a
        // second close()) cannot re-enter it.
        CloseFn cb = std::move(on_close_);
        on_close_ = nullptr;
        cb(*this);
    }
}

void Conn::close_after_send() {
    if (fd_ < 0) return;
    if (tx_pending() == 0) {
        close();
        return;
    }
    draining_ = true;
    // Stop reading: the conversation is over, only the backlog matters.
    loop_.modify(fd_, kWritable);
    want_write_ = true;
}

void Conn::send(const void* data, std::size_t n) {
    if (fd_ < 0 || n == 0) return;
    tx_.append(static_cast<const char*>(data), n);
    flush_tx();
}

void Conn::flush_tx() {
    if (fd_ < 0) return;
    while (tx_offset_ < tx_.size()) {
        // MSG_NOSIGNAL: a peer hanging up mid-send must yield EPIPE here,
        // not SIGPIPE for the whole process.
        const ssize_t n = ::send(fd_, tx_.data() + tx_offset_, tx_.size() - tx_offset_,
                                 MSG_NOSIGNAL);
        if (n > 0) {
            tx_offset_ += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        // A signal (e.g. the sampling profiler's SIGPROF) may interrupt a
        // blocked send even with SA_RESTART; retrying is the only correct
        // reaction — closing would drop the connection under profiling load.
        if (n < 0 && errno == EINTR) continue;
        close();  // peer gone or hard error
        return;
    }
    if (tx_offset_ >= tx_.size()) {
        tx_.clear();
        tx_offset_ = 0;
        if (draining_) {
            close();
            return;
        }
    }
    update_interest();
}

void Conn::update_interest() {
    if (fd_ < 0) return;
    const bool need_write = tx_pending() > 0;
    if (need_write == want_write_) return;
    want_write_ = need_write;
    loop_.modify(fd_, (draining_ ? 0u : kReadable) | (need_write ? kWritable : 0u));
}

void Conn::on_ready(std::uint32_t ready) {
    // Keep *this alive across application callbacks even if they drop every
    // other reference (e.g. a server erasing the session map entry).
    const std::shared_ptr<Conn> guard = shared_from_this();

    if (ready & kWritable) {
        flush_tx();
        if (fd_ < 0) return;
    }
    if ((ready & kReadable) && !draining_) {
        bool peer_closed = false;
        for (;;) {
            char buf[kReadChunk];
            const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
            if (n > 0) {
                rx_.append(buf, static_cast<std::size_t>(n));
                continue;
            }
            if (n == 0) {
                peer_closed = true;
                break;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;  // signal-interrupted: retry, not hangup
            peer_closed = true;  // hard error: treat as hangup
            break;
        }
        if (!rx_.empty() && on_data_) {
            on_data_(*this);
            if (fd_ < 0) return;
        }
        if (peer_closed) {
            close();
            return;
        }
    } else if ((ready & kError) && !(ready & kReadable)) {
        close();
        return;
    }
    if (fd_ >= 0 && (ready & kError) && draining_) close();
}

}  // namespace mvreju::net
