#pragma once

// Sequential model container, softmax-cross-entropy training loop, accuracy
// and error-set evaluation, and parameter (de)serialization.

#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mvreju/ml/layers.hpp"
#include "mvreju/ml/tensor.hpp"
#include "mvreju/num/backend.hpp"

namespace mvreju::ml {

/// A labelled dataset of (C,H,W) images.
struct Dataset {
    std::vector<Tensor> images;
    std::vector<int> labels;
    int num_classes = 0;

    [[nodiscard]] std::size_t size() const noexcept { return images.size(); }
};

/// Result of evaluating a classifier on a dataset.
struct Evaluation {
    double accuracy = 0.0;
    /// Indices of misclassified samples, sorted ascending — the error set
    /// E_i of Section VI-A, feeding the alpha fit (Eq. 8).
    std::vector<std::size_t> error_set;
};

/// Stochastic-gradient training configuration.
struct TrainConfig {
    int epochs = 10;
    std::size_t batch_size = 16;
    float learning_rate = 0.01f;
    float lr_decay = 1.0f;  ///< multiplicative decay applied after each epoch
    float momentum = 0.9f;
    std::uint64_t shuffle_seed = 38;  // the paper pins its seeds; so do we
};

/// Feed-forward stack of layers with shared ownership semantics disabled:
/// a model owns its layers exclusively and supports deep copies via clone().
///
/// Thread-safety contract: every const member — logits(), predict(),
/// probabilities(), logits_batch(), predict_batch(), evaluate() — is
/// genuinely read-only and safe to call concurrently from any number of
/// threads on one shared model. Inference state lives in an explicit
/// Workspace (logits_batch takes it as a parameter; the per-sample entry
/// points use a thread_local one), never in the model or its layers.
/// Mutators — add(), train(), load_parameters(), writes through layer() or
/// parameter_spans() (e.g. fi:: fault injection) — must not overlap with any
/// other access; injecting into a model while another thread runs inference
/// on it is a data race.
class Sequential {
public:
    Sequential() = default;
    explicit Sequential(std::string name) : name_(std::move(name)) {}

    Sequential(const Sequential& other);
    Sequential& operator=(const Sequential& other);
    Sequential(Sequential&&) noexcept = default;
    Sequential& operator=(Sequential&&) noexcept = default;

    /// Append a layer (builder style).
    Sequential& add(std::unique_ptr<Layer> layer);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] std::size_t layer_count() const noexcept { return layers_.size(); }
    [[nodiscard]] Layer& layer(std::size_t index) { return *layers_.at(index); }

    /// Bind the kernel backend every inference entry point dispatches
    /// through (load-time binding: the hot loop never branches on backend
    /// choice). nullptr restores the scalar oracle. Copies inherit the
    /// binding. Like the other mutators, must not overlap with inference.
    void bind_backend(const num::KernelBackend* backend) noexcept {
        backend_ = backend;
    }

    /// The bound backend (scalar when none was bound).
    [[nodiscard]] const num::KernelBackend& backend() const noexcept {
        return backend_ == nullptr ? num::scalar_backend() : *backend_;
    }

    /// Inference pass (no gradient caching).
    [[nodiscard]] Tensor logits(const Tensor& input) const;

    /// logits() through an explicit backend, overriding the bound one for
    /// this call only — how a quantized replica shares float32 weights with
    /// its sibling version without cloning them.
    [[nodiscard]] Tensor logits(const Tensor& input,
                                const num::KernelBackend& kernels) const;

    /// Class prediction: argmax over logits.
    [[nodiscard]] int predict(const Tensor& input) const;

    /// predict() through an explicit backend (see logits() overload).
    [[nodiscard]] int predict(const Tensor& input,
                              const num::KernelBackend& kernels) const;

    /// Softmax probabilities over the logits.
    [[nodiscard]] std::vector<float> probabilities(const Tensor& input) const;

    /// Batched inference core: run a batch with leading sample dimension
    /// ((N, C, H, W) or (N, F)) through every layer's stateless infer()
    /// path. The result comes from `ws.take()` — recycle it with
    /// `ws.give()` when consumed. Bit-identical for every `num_threads`
    /// (0 = auto, 1 = serial; see util::parallel_for).
    [[nodiscard]] Tensor logits_batch(const Tensor& batch, Workspace& ws,
                                      std::size_t num_threads = 1) const;

    /// logits_batch() through an explicit backend, overriding the bound one
    /// for this call — the serving batcher uses this to flush each
    /// (model, backend) queue through the backend the queue is keyed on.
    [[nodiscard]] Tensor logits_batch(const Tensor& batch, Workspace& ws,
                                      std::size_t num_threads,
                                      const num::KernelBackend& kernels) const;

    /// Class predictions for a set of equally-shaped images, chunked through
    /// logits_batch(). Results are identical to calling predict() per image
    /// regardless of `num_threads` or chunking.
    [[nodiscard]] std::vector<int> predict_batch(std::span<const Tensor> images,
                                                 std::size_t num_threads = 0) const;

    /// Train with softmax cross entropy; returns the mean loss per epoch.
    std::vector<double> train(const Dataset& data, const TrainConfig& config);

    /// Accuracy and error set on a dataset, one batched pass over the
    /// images. The result is independent of `num_threads`.
    [[nodiscard]] Evaluation evaluate(const Dataset& data,
                                      std::size_t num_threads = 0) const;

    /// All parameter spans in layer order (composite layers contribute
    /// several). Mutable access: used by the fault injector.
    [[nodiscard]] std::vector<std::span<float>> parameter_spans();

    /// Total number of trainable parameters.
    [[nodiscard]] std::size_t parameter_count();

    /// Save / load raw parameters (architecture must match at load time).
    void save_parameters(const std::filesystem::path& path);
    void load_parameters(const std::filesystem::path& path);

private:
    std::string name_;
    std::vector<std::unique_ptr<Layer>> layers_;
    const num::KernelBackend* backend_ = nullptr;  ///< nullptr == scalar
};

/// Softmax cross-entropy loss value for logits vs a target class.
[[nodiscard]] double cross_entropy_loss(const Tensor& logits, int target);

/// Gradient of the softmax cross-entropy loss with respect to the logits.
[[nodiscard]] Tensor cross_entropy_grad(const Tensor& logits, int target);

/// --- Reference architectures (Section VI-A / VII-A stand-ins) ---
/// Each takes the input geometry and class count plus a seed controlling
/// initialisation, so that "diverse versions" differ in both architecture
/// and initial weights, as the paper's AlexNet/LeNet/ResNet50 trio does.

/// LeNet-style: two conv+pool stages and two dense layers.
[[nodiscard]] Sequential make_tiny_lenet(std::size_t channels, std::size_t side,
                                         int classes, std::uint64_t seed);

/// AlexNet-style: three conv stages with a wider head.
[[nodiscard]] Sequential make_mini_alexnet(std::size_t channels, std::size_t side,
                                           int classes, std::uint64_t seed);

/// ResNet-style: conv stem plus two identity residual blocks.
[[nodiscard]] Sequential make_micro_resnet(std::size_t channels, std::size_t side,
                                           int classes, std::uint64_t seed);

}  // namespace mvreju::ml
