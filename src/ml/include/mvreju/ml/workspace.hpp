#pragma once

// Caller-owned scratch memory for the batched inference path. The engine is
// stateless: layers never cache activations during `infer`, so all transient
// buffers — per-layer activations, the im2col column matrix, the transposed
// Dense weight copy — live in a Workspace the caller provides. One workspace
// per thread gives lock-free concurrent inference on a shared const model;
// reusing the same workspace across calls amortises every allocation away
// after the first batch.

#include <cstddef>
#include <utility>
#include <vector>

#include "mvreju/ml/tensor.hpp"
#include "mvreju/num/backend.hpp"

namespace mvreju::ml {

/// Arena of recycled Tensors plus two raw float scratch buffers, doubling
/// as the execution context that carries the kernel backend the layers
/// dispatch through. Not thread-safe — use one Workspace per thread (see
/// the thread-safety contract in model.hpp).
class Workspace {
public:
    /// A tensor of `shape`, recycled from the pool when one is available.
    /// Element values are unspecified; the caller overwrites them.
    [[nodiscard]] Tensor take(std::vector<std::size_t> shape) {
        if (pool_.empty()) {
            ++allocations_;
            return Tensor(std::move(shape));
        }
        Tensor t = std::move(pool_.back());
        pool_.pop_back();
        const std::size_t cap = t.capacity();
        t.resize(std::move(shape));
        if (t.capacity() > cap) ++allocations_;
        return t;
    }

    /// Return a tensor to the pool for reuse by a later take().
    void give(Tensor t) { pool_.push_back(std::move(t)); }

    /// im2col column-matrix scratch, resized to at least `n` elements.
    [[nodiscard]] std::vector<float>& col(std::size_t n) {
        grow(col_, n);
        return col_;
    }

    /// Auxiliary scratch (transposed Dense weights), at least `n` elements.
    [[nodiscard]] std::vector<float>& aux(std::size_t n) {
        grow(aux_, n);
        return aux_;
    }

    /// Bind the kernel backend layers dispatch through; nullptr means the
    /// scalar oracle. Sequential::logits_batch re-binds this on every call
    /// from the model's own binding, so the hot loop never branches on it.
    void bind_kernels(const num::KernelBackend* kernels) noexcept {
        kernels_ = kernels;
    }

    /// The bound backend (scalar when none was bound).
    [[nodiscard]] const num::KernelBackend& kernels() const noexcept {
        return kernels_ == nullptr ? num::scalar_backend() : *kernels_;
    }

    /// Number of heap growth events (new pooled tensor, tensor capacity
    /// growth, scratch capacity growth) since construction. In the steady
    /// state — same shapes batch after batch — this must stay constant;
    /// bench/microbench.cpp asserts it.
    [[nodiscard]] std::size_t allocation_count() const noexcept {
        return allocations_;
    }

    /// Total bytes currently held (pooled tensor capacity + scratch
    /// capacity) — exported as the ml.infer.workspace_bytes gauge.
    [[nodiscard]] std::size_t bytes() const noexcept {
        std::size_t elements = col_.capacity() + aux_.capacity();
        for (const Tensor& t : pool_) elements += t.capacity();
        return elements * sizeof(float);
    }

private:
    void grow(std::vector<float>& buffer, std::size_t n) {
        if (buffer.size() >= n) return;
        const std::size_t cap = buffer.capacity();
        buffer.resize(n);
        if (buffer.capacity() > cap) ++allocations_;
    }

    std::vector<Tensor> pool_;
    std::vector<float> col_;
    std::vector<float> aux_;
    const num::KernelBackend* kernels_ = nullptr;
    std::size_t allocations_ = 0;
};

}  // namespace mvreju::ml
