#pragma once

// Caller-owned scratch memory for the batched inference path. The engine is
// stateless: layers never cache activations during `infer`, so all transient
// buffers — per-layer activations, the im2col column matrix, the transposed
// Dense weight copy — live in a Workspace the caller provides. One workspace
// per thread gives lock-free concurrent inference on a shared const model;
// reusing the same workspace across calls amortises every allocation away
// after the first batch.

#include <cstddef>
#include <utility>
#include <vector>

#include "mvreju/ml/tensor.hpp"

namespace mvreju::ml {

/// Arena of recycled Tensors plus two raw float scratch buffers. Not
/// thread-safe — use one Workspace per thread (see the thread-safety
/// contract in model.hpp).
class Workspace {
public:
    /// A tensor of `shape`, recycled from the pool when one is available.
    /// Element values are unspecified; the caller overwrites them.
    [[nodiscard]] Tensor take(std::vector<std::size_t> shape) {
        if (pool_.empty()) return Tensor(std::move(shape));
        Tensor t = std::move(pool_.back());
        pool_.pop_back();
        t.resize(std::move(shape));
        return t;
    }

    /// Return a tensor to the pool for reuse by a later take().
    void give(Tensor t) { pool_.push_back(std::move(t)); }

    /// im2col column-matrix scratch, resized to at least `n` elements.
    [[nodiscard]] std::vector<float>& col(std::size_t n) {
        if (col_.size() < n) col_.resize(n);
        return col_;
    }

    /// Auxiliary scratch (transposed Dense weights), at least `n` elements.
    [[nodiscard]] std::vector<float>& aux(std::size_t n) {
        if (aux_.size() < n) aux_.resize(n);
        return aux_;
    }

    /// Total bytes currently held (pooled tensor capacity + scratch
    /// capacity) — exported as the ml.infer.workspace_bytes gauge.
    [[nodiscard]] std::size_t bytes() const noexcept {
        std::size_t elements = col_.capacity() + aux_.capacity();
        for (const Tensor& t : pool_) elements += t.capacity();
        return elements * sizeof(float);
    }

private:
    std::vector<Tensor> pool_;
    std::vector<float> col_;
    std::vector<float> aux_;
};

}  // namespace mvreju::ml
