#pragma once

// Neural-network layers with forward/backward passes and SGD-with-momentum
// parameter updates. The library is intentionally small: it exists to train
// the diverse classifier/detector versions the paper's architecture needs
// (stand-ins for AlexNet/LeNet/ResNet50 and the YOLOv5 variants) and to give
// the fault injector (mvreju::fi) direct access to raw weights.

#include <memory>
#include <span>
#include <string>

#include "mvreju/ml/tensor.hpp"
#include "mvreju/ml/workspace.hpp"
#include "mvreju/util/rng.hpp"

namespace mvreju::ml {

/// Base class of all layers. A layer caches whatever it needs from the last
/// forward() call so that backward() can run; gradients accumulate until
/// apply_gradients()/zero_gradients().
///
/// Inference has a second, stateless entry point: infer() takes a batch with
/// a leading sample dimension ((N, F) for vectors, (N, C, H, W) for images)
/// and an explicit Workspace, touches no mutable layer state, and is safe to
/// call concurrently from many threads on one shared layer as long as each
/// thread brings its own Workspace. The im2col+GEMM kernels under num/ keep
/// one accumulator per output element in the same ascending reduction order
/// as the naive loops, so infer() is bit-identical across thread counts and
/// matches forward(sample, /*training=*/false) per sample bitwise (the only
/// exception: a zero-padding tap may flip the sign of an exactly-zero
/// accumulator, which compares equal and never changes a prediction).
class Layer {
public:
    virtual ~Layer() = default;

    /// Forward pass. When `training` is false, layers may skip caching.
    virtual Tensor forward(const Tensor& input, bool training) = 0;

    /// Stateless batched inference; see the class comment for the contract.
    /// The returned tensor comes from `ws.take()` — callers recycle it with
    /// `ws.give()` once consumed. `num_threads` follows util::parallel_for
    /// conventions (0 = auto, 1 = serial inline).
    [[nodiscard]] virtual Tensor infer(const Tensor& batch, Workspace& ws,
                                       std::size_t num_threads) const = 0;

    /// Backward pass: receives dLoss/dOutput, returns dLoss/dInput and
    /// accumulates parameter gradients. Must follow a training forward().
    virtual Tensor backward(const Tensor& grad_output) = 0;

    /// SGD step with momentum over accumulated gradients (scaled by 1/count
    /// by the caller via lr); resets nothing.
    virtual void apply_gradients(float learning_rate, float momentum) {
        (void)learning_rate;
        (void)momentum;
    }
    virtual void zero_gradients() {}

    /// Raw trainable parameters (weights followed by biases); empty span for
    /// parameterless layers. Composite layers expose several spans via
    /// collect_parameters(). Exposed for fault injection and serialization.
    virtual std::span<float> parameters() { return {}; }

    /// Append all parameter spans of this layer (composite layers append one
    /// span per inner parameterized layer).
    virtual void collect_parameters(std::vector<std::span<float>>& out) {
        const auto span = parameters();
        if (!span.empty()) out.push_back(span);
    }

    [[nodiscard]] virtual std::string kind() const = 0;
    [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;
};

/// Fully connected layer: output = W x + b.
class Dense final : public Layer {
public:
    Dense(std::size_t inputs, std::size_t outputs, util::Rng& rng);

    Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor infer(const Tensor& batch, Workspace& ws,
                               std::size_t num_threads) const override;
    Tensor backward(const Tensor& grad_output) override;
    void apply_gradients(float learning_rate, float momentum) override;
    void zero_gradients() override;
    std::span<float> parameters() override { return params_; }
    [[nodiscard]] std::string kind() const override { return "dense"; }
    [[nodiscard]] std::unique_ptr<Layer> clone() const override {
        return std::make_unique<Dense>(*this);
    }

    [[nodiscard]] std::size_t inputs() const noexcept { return inputs_; }
    [[nodiscard]] std::size_t outputs() const noexcept { return outputs_; }

private:
    std::size_t inputs_;
    std::size_t outputs_;
    std::vector<float> params_;    // weights (outputs x inputs), then biases
    std::vector<float> grads_;
    std::vector<float> velocity_;
    Tensor last_input_;
};

/// 2-D convolution, stride 1, zero padding `pad`, square kernels, on
/// (C, H, W) tensors.
class Conv2D final : public Layer {
public:
    Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
           std::size_t pad, util::Rng& rng);

    Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor infer(const Tensor& batch, Workspace& ws,
                               std::size_t num_threads) const override;
    Tensor backward(const Tensor& grad_output) override;
    void apply_gradients(float learning_rate, float momentum) override;
    void zero_gradients() override;
    std::span<float> parameters() override { return params_; }
    [[nodiscard]] std::string kind() const override { return "conv2d"; }
    [[nodiscard]] std::unique_ptr<Layer> clone() const override {
        return std::make_unique<Conv2D>(*this);
    }

private:
    [[nodiscard]] float& weight(std::size_t oc, std::size_t ic, std::size_t kh,
                                std::size_t kw) {
        return params_[((oc * in_channels_ + ic) * kernel_ + kh) * kernel_ + kw];
    }

    std::size_t in_channels_;
    std::size_t out_channels_;
    std::size_t kernel_;
    std::size_t pad_;
    std::vector<float> params_;  // weights, then out_channels biases
    std::vector<float> grads_;
    std::vector<float> velocity_;
    Tensor last_input_;
};

/// Element-wise rectifier.
class ReLU final : public Layer {
public:
    Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor infer(const Tensor& batch, Workspace& ws,
                               std::size_t num_threads) const override;
    Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] std::string kind() const override { return "relu"; }
    [[nodiscard]] std::unique_ptr<Layer> clone() const override {
        return std::make_unique<ReLU>(*this);
    }

private:
    Tensor last_input_;
};

/// 2x2 max pooling with stride 2 on (C, H, W) tensors (even H and W).
class MaxPool2D final : public Layer {
public:
    Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor infer(const Tensor& batch, Workspace& ws,
                               std::size_t num_threads) const override;
    Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] std::string kind() const override { return "maxpool"; }
    [[nodiscard]] std::unique_ptr<Layer> clone() const override {
        return std::make_unique<MaxPool2D>(*this);
    }

private:
    std::vector<std::size_t> argmax_;  // flat input index per output element
    std::vector<std::size_t> in_shape_;
};

/// Reshape (C, H, W) to a flat vector.
class Flatten final : public Layer {
public:
    Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor infer(const Tensor& batch, Workspace& ws,
                               std::size_t num_threads) const override;
    Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] std::string kind() const override { return "flatten"; }
    [[nodiscard]] std::unique_ptr<Layer> clone() const override {
        return std::make_unique<Flatten>(*this);
    }

private:
    std::vector<std::size_t> in_shape_;
};

/// Numerically stable softmax over the class dimension (max-subtracted).
/// The reference architectures train on raw logits via softmax cross
/// entropy, so none of them embeds this layer; it exists for heads that
/// want calibrated probabilities out of the batched engine.
class Softmax final : public Layer {
public:
    Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor infer(const Tensor& batch, Workspace& ws,
                               std::size_t num_threads) const override;
    Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] std::string kind() const override { return "softmax"; }
    [[nodiscard]] std::unique_ptr<Layer> clone() const override {
        return std::make_unique<Softmax>(*this);
    }

private:
    Tensor last_output_;
};

/// Residual block: output = ReLU(conv2(ReLU(conv1(x))) + x). Channel count
/// is preserved (the MicroResNet stand-in only needs identity skips).
class ResidualBlock final : public Layer {
public:
    ResidualBlock(std::size_t channels, std::size_t kernel, util::Rng& rng);
    ResidualBlock(const ResidualBlock& other);
    ResidualBlock& operator=(const ResidualBlock&) = delete;

    Tensor forward(const Tensor& input, bool training) override;
    [[nodiscard]] Tensor infer(const Tensor& batch, Workspace& ws,
                               std::size_t num_threads) const override;
    Tensor backward(const Tensor& grad_output) override;
    void apply_gradients(float learning_rate, float momentum) override;
    void zero_gradients() override;
    void collect_parameters(std::vector<std::span<float>>& out) override;
    [[nodiscard]] std::string kind() const override { return "residual"; }
    [[nodiscard]] std::unique_ptr<Layer> clone() const override {
        return std::make_unique<ResidualBlock>(*this);
    }

private:
    std::unique_ptr<Conv2D> conv1_;
    std::unique_ptr<ReLU> relu1_;
    std::unique_ptr<Conv2D> conv2_;
    Tensor last_out_;  // post-sum, post-ReLU activation (for the final ReLU grad)
};

}  // namespace mvreju::ml
