#pragma once

// Minimal dense float tensor for the from-scratch neural-network library.
// Layout is row-major over the shape; images use (channels, height, width).

#include <cstddef>
#include <numeric>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace mvreju::ml {

/// Dense float tensor. Regular value type: copyable, movable, comparable by
/// shape+contents (used by tests).
class Tensor {
public:
    Tensor() = default;

    explicit Tensor(std::vector<std::size_t> shape, float fill = 0.0f)
        : shape_(std::move(shape)), data_(count(shape_), fill) {}

    Tensor(std::vector<std::size_t> shape, std::vector<float> data)
        : shape_(std::move(shape)), data_(std::move(data)) {
        if (data_.size() != count(shape_))
            throw std::invalid_argument("Tensor: data size does not match shape");
    }

    [[nodiscard]] const std::vector<std::size_t>& shape() const noexcept { return shape_; }
    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
    [[nodiscard]] std::size_t rank() const noexcept { return shape_.size(); }

    [[nodiscard]] std::span<float> data() noexcept { return data_; }
    [[nodiscard]] std::span<const float> data() const noexcept { return data_; }

    float& operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    /// 3-D accessor for (C, H, W) images.
    float& at3(std::size_t c, std::size_t h, std::size_t w) {
        return data_[(c * shape_[1] + h) * shape_[2] + w];
    }
    [[nodiscard]] float at3(std::size_t c, std::size_t h, std::size_t w) const {
        return data_[(c * shape_[1] + h) * shape_[2] + w];
    }

    /// 4-D accessor for batched (N, C, H, W) views.
    float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
        return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
    }
    [[nodiscard]] float at4(std::size_t n, std::size_t c, std::size_t h,
                            std::size_t w) const {
        return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
    }

    /// Reshape in place, reusing the allocation when the new element count
    /// fits the existing capacity. Element values are unspecified after a
    /// resize that changes the count — callers overwrite them (the Workspace
    /// pool relies on this to recycle buffers without reallocating).
    void resize(std::vector<std::size_t> shape) {
        shape_ = std::move(shape);
        data_.resize(count(shape_));
    }

    /// Allocated capacity in elements (>= size()); Workspace::bytes() sums it.
    [[nodiscard]] std::size_t capacity() const noexcept { return data_.capacity(); }

    friend bool operator==(const Tensor&, const Tensor&) = default;

    [[nodiscard]] static std::size_t count(const std::vector<std::size_t>& shape) {
        return std::accumulate(shape.begin(), shape.end(), std::size_t{1},
                               std::multiplies<>());
    }

private:
    std::vector<std::size_t> shape_;
    std::vector<float> data_;
};

/// Index of the maximum element (first on ties). Requires non-empty tensor.
[[nodiscard]] std::size_t argmax(const Tensor& t);

/// "(a, b, c)" rendering of a shape, for error messages.
[[nodiscard]] std::string shape_string(const std::vector<std::size_t>& shape);

}  // namespace mvreju::ml
