#include "mvreju/ml/tensor.hpp"

namespace mvreju::ml {

std::size_t argmax(const Tensor& t) {
    if (t.size() == 0) throw std::invalid_argument("argmax: empty tensor");
    std::size_t best = 0;
    for (std::size_t i = 1; i < t.size(); ++i)
        if (t[i] > t[best]) best = i;
    return best;
}

std::string shape_string(const std::vector<std::size_t>& shape) {
    std::string out = "(";
    for (std::size_t i = 0; i < shape.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::to_string(shape[i]);
    }
    out += ")";
    return out;
}

}  // namespace mvreju::ml
