#include "mvreju/ml/tensor.hpp"

namespace mvreju::ml {

std::size_t argmax(const Tensor& t) {
    if (t.size() == 0) throw std::invalid_argument("argmax: empty tensor");
    std::size_t best = 0;
    for (std::size_t i = 1; i < t.size(); ++i)
        if (t[i] > t[best]) best = i;
    return best;
}

}  // namespace mvreju::ml
