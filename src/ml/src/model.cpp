#include "mvreju/ml/model.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <numeric>
#include <stdexcept>

#include "mvreju/obs/metrics.hpp"
#include "mvreju/util/parallel.hpp"

namespace mvreju::ml {

namespace {

/// Per-thread workspace behind the per-sample const entry points (logits,
/// predict, probabilities, predict_batch). Keeping it thread_local makes
/// those methods genuinely const and thread-safe on a shared model while
/// still amortising allocations across calls.
Workspace& local_workspace() {
    thread_local Workspace ws;
    return ws;
}

/// predict_batch stacks images into batches of at most this many samples —
/// large enough to feed the GEMM kernels, small enough to bound workspace
/// memory (the im2col column matrix scales with the chunk).
constexpr std::size_t kPredictChunk = 256;

}  // namespace

Sequential::Sequential(const Sequential& other)
    : name_(other.name_), backend_(other.backend_) {
    layers_.reserve(other.layers_.size());
    for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
}

Sequential& Sequential::operator=(const Sequential& other) {
    if (this == &other) return *this;
    Sequential copy(other);
    *this = std::move(copy);
    return *this;
}

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
    if (!layer) throw std::invalid_argument("Sequential::add: null layer");
    layers_.push_back(std::move(layer));
    return *this;
}

Tensor Sequential::logits(const Tensor& input) const {
    return logits(input, backend());
}

Tensor Sequential::logits(const Tensor& input,
                          const num::KernelBackend& kernels) const {
    Workspace& ws = local_workspace();
    std::vector<std::size_t> batch_shape;
    batch_shape.reserve(input.rank() + 1);
    batch_shape.push_back(1);
    for (std::size_t d : input.shape()) batch_shape.push_back(d);
    Tensor batch = ws.take(std::move(batch_shape));
    std::memcpy(batch.data().data(), input.data().data(),
                input.size() * sizeof(float));
    Tensor out = logits_batch(batch, ws, /*num_threads=*/1, kernels);
    ws.give(std::move(batch));
    Tensor result(
        std::vector<std::size_t>(out.shape().begin() + 1, out.shape().end()),
        std::vector<float>(out.data().begin(), out.data().end()));
    ws.give(std::move(out));
    return result;
}

Tensor Sequential::logits_batch(const Tensor& batch, Workspace& ws,
                                std::size_t num_threads) const {
    return logits_batch(batch, ws, num_threads, backend());
}

Tensor Sequential::logits_batch(const Tensor& batch, Workspace& ws,
                                std::size_t num_threads,
                                const num::KernelBackend& kernels) const {
    if (layers_.empty()) throw std::logic_error("Sequential: empty model");
    ws.bind_kernels(&kernels);
    if (batch.rank() < 2 || batch.shape()[0] == 0)
        throw std::invalid_argument(
            "Sequential::logits_batch: expected non-empty batch with a leading "
            "sample dimension, got " +
            shape_string(batch.shape()));
    const std::size_t nb = batch.shape()[0];

    Tensor x = layers_.front()->infer(batch, ws, num_threads);
    for (std::size_t i = 1; i < layers_.size(); ++i) {
        Tensor y = layers_[i]->infer(x, ws, num_threads);
        ws.give(std::move(x));
        x = std::move(y);
    }

    static obs::Counter& images = obs::metrics().counter("ml.infer.images");
    static obs::Histogram& batch_sizes = obs::metrics().histogram(
        "ml.infer.batch_size", obs::HistogramBounds::exponential(1.0, 2.0, 10));
    static obs::Gauge& workspace_bytes =
        obs::metrics().gauge("ml.infer.workspace_bytes");
    static obs::Gauge& backend_gauge = obs::metrics().gauge("ml.backend.name");
    images.add(nb);
    batch_sizes.record(static_cast<double>(nb));
    workspace_bytes.set(static_cast<double>(ws.bytes()));
    // Which backend served: the gauge holds the registry index of the most
    // recent dispatch, the per-backend counters tally dispatches by name.
    backend_gauge.set(static_cast<double>(num::backend_index(kernels)));
    obs::metrics()
        .counter("ml.backend.dispatches." + std::string(kernels.name()))
        .add(1);
    return x;
}

std::vector<int> Sequential::predict_batch(std::span<const Tensor> images,
                                           std::size_t num_threads) const {
    std::vector<int> predictions(images.size());
    if (images.empty()) return predictions;

    const std::vector<std::size_t>& image_shape = images[0].shape();
    const std::size_t sample_size = images[0].size();

    // Parallelism lives at chunk granularity: each chunk runs the whole
    // layer stack serially in its own thread's workspace, so one
    // parallel_for covers the call (per-layer fan-out would respawn threads
    // per layer per chunk). Chunking and threading never change the result:
    // every sample's logits are bit-identical however they are batched.
    const std::size_t workers = num_threads == 0 ? util::hardware_threads() : num_threads;
    std::size_t chunk = kPredictChunk;
    if (workers > 1 && images.size() > chunk)
        chunk = std::clamp(images.size() / (workers * 4), std::size_t{16},
                           kPredictChunk);
    const std::size_t num_chunks = (images.size() + chunk - 1) / chunk;

    auto process_chunk = [&](std::size_t c) {
        Workspace& ws = local_workspace();
        const std::size_t pos = c * chunk;
        const std::size_t nb = std::min(chunk, images.size() - pos);
        std::vector<std::size_t> batch_shape;
        batch_shape.reserve(image_shape.size() + 1);
        batch_shape.push_back(nb);
        for (std::size_t d : image_shape) batch_shape.push_back(d);
        Tensor batch = ws.take(std::move(batch_shape));
        float* stacked = batch.data().data();
        for (std::size_t i = 0; i < nb; ++i) {
            const Tensor& image = images[pos + i];
            if (image.shape() != image_shape)
                throw std::invalid_argument(
                    "predict_batch: image " + std::to_string(pos + i) +
                    " has shape " + shape_string(image.shape()) + ", expected " +
                    shape_string(image_shape));
            std::memcpy(stacked + i * sample_size, image.data().data(),
                        sample_size * sizeof(float));
        }
        Tensor out = logits_batch(batch, ws, /*num_threads=*/1);
        const std::size_t classes = out.size() / nb;
        const float* rows = out.data().data();
        for (std::size_t i = 0; i < nb; ++i) {
            const float* row = rows + i * classes;
            std::size_t best = 0;
            for (std::size_t j = 1; j < classes; ++j)
                if (row[j] > row[best]) best = j;
            predictions[pos + i] = static_cast<int>(best);
        }
        ws.give(std::move(batch));
        ws.give(std::move(out));
    };

    if (workers <= 1 || num_chunks == 1) {
        for (std::size_t c = 0; c < num_chunks; ++c) process_chunk(c);
    } else {
        util::parallel_for(num_chunks, process_chunk, workers);
    }
    return predictions;
}

int Sequential::predict(const Tensor& input) const {
    return static_cast<int>(argmax(logits(input)));
}

int Sequential::predict(const Tensor& input,
                        const num::KernelBackend& kernels) const {
    return static_cast<int>(argmax(logits(input, kernels)));
}

std::vector<float> Sequential::probabilities(const Tensor& input) const {
    const Tensor raw = logits(input);
    std::vector<float> probs(raw.size());
    float max_logit = raw[0];
    for (std::size_t i = 1; i < raw.size(); ++i) max_logit = std::max(max_logit, raw[i]);
    float total = 0.0f;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        probs[i] = std::exp(raw[i] - max_logit);
        total += probs[i];
    }
    for (float& p : probs) p /= total;
    return probs;
}

double cross_entropy_loss(const Tensor& logits, int target) {
    if (target < 0 || static_cast<std::size_t>(target) >= logits.size())
        throw std::invalid_argument("cross_entropy_loss: target out of range");
    float max_logit = logits[0];
    for (std::size_t i = 1; i < logits.size(); ++i)
        max_logit = std::max(max_logit, logits[i]);
    double log_sum = 0.0;
    for (std::size_t i = 0; i < logits.size(); ++i)
        log_sum += std::exp(static_cast<double>(logits[i] - max_logit));
    return std::log(log_sum) - (logits[static_cast<std::size_t>(target)] - max_logit);
}

Tensor cross_entropy_grad(const Tensor& logits, int target) {
    if (target < 0 || static_cast<std::size_t>(target) >= logits.size())
        throw std::invalid_argument("cross_entropy_grad: target out of range");
    float max_logit = logits[0];
    for (std::size_t i = 1; i < logits.size(); ++i)
        max_logit = std::max(max_logit, logits[i]);
    Tensor grad({logits.size()});
    float total = 0.0f;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        grad[i] = std::exp(logits[i] - max_logit);
        total += grad[i];
    }
    for (std::size_t i = 0; i < grad.size(); ++i) grad[i] /= total;
    grad[static_cast<std::size_t>(target)] -= 1.0f;
    return grad;
}

std::vector<double> Sequential::train(const Dataset& data, const TrainConfig& config) {
    if (data.size() == 0) throw std::invalid_argument("train: empty dataset");
    if (data.images.size() != data.labels.size())
        throw std::invalid_argument("train: image/label count mismatch");
    if (config.batch_size == 0) throw std::invalid_argument("train: zero batch size");

    util::Rng rng(config.shuffle_seed);
    std::vector<std::size_t> order(data.size());
    std::iota(order.begin(), order.end(), 0);

    std::vector<double> epoch_losses;
    epoch_losses.reserve(static_cast<std::size_t>(config.epochs));

    float epoch_lr = config.learning_rate;
    for (int epoch = 0; epoch < config.epochs; ++epoch) {
        // Fisher-Yates with our deterministic RNG.
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[rng.uniform_int(i)]);

        double loss_acc = 0.0;
        std::size_t in_batch = 0;
        for (auto& layer : layers_) layer->zero_gradients();

        for (std::size_t idx : order) {
            Tensor x = data.images[idx];
            for (auto& layer : layers_) x = layer->forward(x, /*training=*/true);
            loss_acc += cross_entropy_loss(x, data.labels[idx]);
            Tensor grad = cross_entropy_grad(x, data.labels[idx]);
            for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
                grad = (*it)->backward(grad);

            if (++in_batch == config.batch_size) {
                const float lr = epoch_lr / static_cast<float>(in_batch);
                for (auto& layer : layers_) {
                    layer->apply_gradients(lr, config.momentum);
                    layer->zero_gradients();
                }
                in_batch = 0;
            }
        }
        if (in_batch > 0) {
            const float lr = epoch_lr / static_cast<float>(in_batch);
            for (auto& layer : layers_) {
                layer->apply_gradients(lr, config.momentum);
                layer->zero_gradients();
            }
        }
        epoch_losses.push_back(loss_acc / static_cast<double>(data.size()));
        epoch_lr *= config.lr_decay;
    }
    return epoch_losses;
}

Evaluation Sequential::evaluate(const Dataset& data, std::size_t num_threads) const {
    if (data.size() == 0) throw std::invalid_argument("evaluate: empty dataset");
    if (data.images.size() != data.labels.size())
        throw std::invalid_argument("evaluate: image/label count mismatch");
    Evaluation eval;
    const std::vector<int> predicted = predict_batch(data.images, num_threads);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        if (predicted[i] == data.labels[i]) {
            ++correct;
        } else {
            eval.error_set.push_back(i);
        }
    }
    eval.accuracy = static_cast<double>(correct) / static_cast<double>(data.size());
    return eval;
}

std::vector<std::span<float>> Sequential::parameter_spans() {
    std::vector<std::span<float>> spans;
    for (auto& layer : layers_) layer->collect_parameters(spans);
    return spans;
}

std::size_t Sequential::parameter_count() {
    std::size_t total = 0;
    for (const auto& span : parameter_spans()) total += span.size();
    return total;
}

void Sequential::save_parameters(const std::filesystem::path& path) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("save_parameters: cannot open " + path.string());
    const auto spans = parameter_spans();
    const std::uint64_t span_count = spans.size();
    out.write(reinterpret_cast<const char*>(&span_count), sizeof span_count);
    for (const auto& span : spans) {
        const std::uint64_t n = span.size();
        out.write(reinterpret_cast<const char*>(&n), sizeof n);
        out.write(reinterpret_cast<const char*>(span.data()),
                  static_cast<std::streamsize>(n * sizeof(float)));
    }
    if (!out) throw std::runtime_error("save_parameters: write failed");
}

void Sequential::load_parameters(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("load_parameters: cannot open " + path.string());
    auto spans = parameter_spans();
    std::uint64_t span_count = 0;
    in.read(reinterpret_cast<char*>(&span_count), sizeof span_count);
    if (span_count != spans.size())
        throw std::runtime_error("load_parameters: architecture mismatch (span count)");
    for (auto& span : spans) {
        std::uint64_t n = 0;
        in.read(reinterpret_cast<char*>(&n), sizeof n);
        if (n != span.size())
            throw std::runtime_error("load_parameters: architecture mismatch (span size)");
        in.read(reinterpret_cast<char*>(span.data()),
                static_cast<std::streamsize>(n * sizeof(float)));
    }
    if (!in) throw std::runtime_error("load_parameters: truncated file");
}

namespace {

/// Spatial side length after `pools` halvings.
std::size_t after_pools(std::size_t side, int pools) {
    for (int i = 0; i < pools; ++i) {
        if (side % 2 != 0) throw std::invalid_argument("architecture: side not divisible");
        side /= 2;
    }
    return side;
}

}  // namespace

Sequential make_tiny_lenet(std::size_t channels, std::size_t side, int classes,
                           std::uint64_t seed) {
    util::Rng rng(seed);
    const std::size_t s2 = after_pools(side, 2);
    Sequential model("TinyLeNet");
    model.add(std::make_unique<Conv2D>(channels, 6, 3, 1, rng))
        .add(std::make_unique<ReLU>())
        .add(std::make_unique<MaxPool2D>())
        .add(std::make_unique<Conv2D>(6, 12, 3, 1, rng))
        .add(std::make_unique<ReLU>())
        .add(std::make_unique<MaxPool2D>())
        .add(std::make_unique<Flatten>())
        .add(std::make_unique<Dense>(12 * s2 * s2, 48, rng))
        .add(std::make_unique<ReLU>())
        .add(std::make_unique<Dense>(48, static_cast<std::size_t>(classes), rng));
    return model;
}

Sequential make_mini_alexnet(std::size_t channels, std::size_t side, int classes,
                             std::uint64_t seed) {
    util::Rng rng(seed);
    const std::size_t s2 = after_pools(side, 2);
    Sequential model("MiniAlexNet");
    model.add(std::make_unique<Conv2D>(channels, 10, 3, 1, rng))
        .add(std::make_unique<ReLU>())
        .add(std::make_unique<MaxPool2D>())
        .add(std::make_unique<Conv2D>(10, 16, 3, 1, rng))
        .add(std::make_unique<ReLU>())
        .add(std::make_unique<Conv2D>(16, 16, 3, 1, rng))
        .add(std::make_unique<ReLU>())
        .add(std::make_unique<MaxPool2D>())
        .add(std::make_unique<Flatten>())
        .add(std::make_unique<Dense>(16 * s2 * s2, 64, rng))
        .add(std::make_unique<ReLU>())
        .add(std::make_unique<Dense>(64, static_cast<std::size_t>(classes), rng));
    return model;
}

Sequential make_micro_resnet(std::size_t channels, std::size_t side, int classes,
                             std::uint64_t seed) {
    util::Rng rng(seed);
    const std::size_t s2 = after_pools(side, 2);
    Sequential model("MicroResNet");
    model.add(std::make_unique<Conv2D>(channels, 12, 3, 1, rng))
        .add(std::make_unique<ReLU>())
        .add(std::make_unique<MaxPool2D>())
        .add(std::make_unique<ResidualBlock>(12, 3, rng))
        .add(std::make_unique<MaxPool2D>())
        .add(std::make_unique<ResidualBlock>(12, 3, rng))
        .add(std::make_unique<Flatten>())
        .add(std::make_unique<Dense>(12 * s2 * s2, 48, rng))
        .add(std::make_unique<ReLU>())
        .add(std::make_unique<Dense>(48, static_cast<std::size_t>(classes), rng));
    return model;
}

}  // namespace mvreju::ml
