#include "mvreju/ml/model.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>
#include <stdexcept>

namespace mvreju::ml {

Sequential::Sequential(const Sequential& other) : name_(other.name_) {
    layers_.reserve(other.layers_.size());
    for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
}

Sequential& Sequential::operator=(const Sequential& other) {
    if (this == &other) return *this;
    Sequential copy(other);
    *this = std::move(copy);
    return *this;
}

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
    if (!layer) throw std::invalid_argument("Sequential::add: null layer");
    layers_.push_back(std::move(layer));
    return *this;
}

Tensor Sequential::logits(const Tensor& input) const {
    if (layers_.empty()) throw std::logic_error("Sequential: empty model");
    Tensor x = input;
    // Inference does not mutate logical state; the const_cast confines the
    // caching non-constness of Layer::forward to this one place.
    for (const auto& layer : layers_)
        x = const_cast<Layer&>(*layer).forward(x, /*training=*/false);
    return x;
}

int Sequential::predict(const Tensor& input) const {
    return static_cast<int>(argmax(logits(input)));
}

std::vector<float> Sequential::probabilities(const Tensor& input) const {
    const Tensor raw = logits(input);
    std::vector<float> probs(raw.size());
    float max_logit = raw[0];
    for (std::size_t i = 1; i < raw.size(); ++i) max_logit = std::max(max_logit, raw[i]);
    float total = 0.0f;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        probs[i] = std::exp(raw[i] - max_logit);
        total += probs[i];
    }
    for (float& p : probs) p /= total;
    return probs;
}

double cross_entropy_loss(const Tensor& logits, int target) {
    if (target < 0 || static_cast<std::size_t>(target) >= logits.size())
        throw std::invalid_argument("cross_entropy_loss: target out of range");
    float max_logit = logits[0];
    for (std::size_t i = 1; i < logits.size(); ++i)
        max_logit = std::max(max_logit, logits[i]);
    double log_sum = 0.0;
    for (std::size_t i = 0; i < logits.size(); ++i)
        log_sum += std::exp(static_cast<double>(logits[i] - max_logit));
    return std::log(log_sum) - (logits[static_cast<std::size_t>(target)] - max_logit);
}

Tensor cross_entropy_grad(const Tensor& logits, int target) {
    if (target < 0 || static_cast<std::size_t>(target) >= logits.size())
        throw std::invalid_argument("cross_entropy_grad: target out of range");
    float max_logit = logits[0];
    for (std::size_t i = 1; i < logits.size(); ++i)
        max_logit = std::max(max_logit, logits[i]);
    Tensor grad({logits.size()});
    float total = 0.0f;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        grad[i] = std::exp(logits[i] - max_logit);
        total += grad[i];
    }
    for (std::size_t i = 0; i < grad.size(); ++i) grad[i] /= total;
    grad[static_cast<std::size_t>(target)] -= 1.0f;
    return grad;
}

std::vector<double> Sequential::train(const Dataset& data, const TrainConfig& config) {
    if (data.size() == 0) throw std::invalid_argument("train: empty dataset");
    if (data.images.size() != data.labels.size())
        throw std::invalid_argument("train: image/label count mismatch");
    if (config.batch_size == 0) throw std::invalid_argument("train: zero batch size");

    util::Rng rng(config.shuffle_seed);
    std::vector<std::size_t> order(data.size());
    std::iota(order.begin(), order.end(), 0);

    std::vector<double> epoch_losses;
    epoch_losses.reserve(static_cast<std::size_t>(config.epochs));

    float epoch_lr = config.learning_rate;
    for (int epoch = 0; epoch < config.epochs; ++epoch) {
        // Fisher-Yates with our deterministic RNG.
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[rng.uniform_int(i)]);

        double loss_acc = 0.0;
        std::size_t in_batch = 0;
        for (auto& layer : layers_) layer->zero_gradients();

        for (std::size_t idx : order) {
            Tensor x = data.images[idx];
            for (auto& layer : layers_) x = layer->forward(x, /*training=*/true);
            loss_acc += cross_entropy_loss(x, data.labels[idx]);
            Tensor grad = cross_entropy_grad(x, data.labels[idx]);
            for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
                grad = (*it)->backward(grad);

            if (++in_batch == config.batch_size) {
                const float lr = epoch_lr / static_cast<float>(in_batch);
                for (auto& layer : layers_) {
                    layer->apply_gradients(lr, config.momentum);
                    layer->zero_gradients();
                }
                in_batch = 0;
            }
        }
        if (in_batch > 0) {
            const float lr = epoch_lr / static_cast<float>(in_batch);
            for (auto& layer : layers_) {
                layer->apply_gradients(lr, config.momentum);
                layer->zero_gradients();
            }
        }
        epoch_losses.push_back(loss_acc / static_cast<double>(data.size()));
        epoch_lr *= config.lr_decay;
    }
    return epoch_losses;
}

Evaluation Sequential::evaluate(const Dataset& data) const {
    if (data.size() == 0) throw std::invalid_argument("evaluate: empty dataset");
    Evaluation eval;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (predict(data.images[i]) == data.labels[i]) {
            ++correct;
        } else {
            eval.error_set.push_back(i);
        }
    }
    eval.accuracy = static_cast<double>(correct) / static_cast<double>(data.size());
    return eval;
}

std::vector<std::span<float>> Sequential::parameter_spans() {
    std::vector<std::span<float>> spans;
    for (auto& layer : layers_) layer->collect_parameters(spans);
    return spans;
}

std::size_t Sequential::parameter_count() {
    std::size_t total = 0;
    for (const auto& span : parameter_spans()) total += span.size();
    return total;
}

void Sequential::save_parameters(const std::filesystem::path& path) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("save_parameters: cannot open " + path.string());
    const auto spans = parameter_spans();
    const std::uint64_t span_count = spans.size();
    out.write(reinterpret_cast<const char*>(&span_count), sizeof span_count);
    for (const auto& span : spans) {
        const std::uint64_t n = span.size();
        out.write(reinterpret_cast<const char*>(&n), sizeof n);
        out.write(reinterpret_cast<const char*>(span.data()),
                  static_cast<std::streamsize>(n * sizeof(float)));
    }
    if (!out) throw std::runtime_error("save_parameters: write failed");
}

void Sequential::load_parameters(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("load_parameters: cannot open " + path.string());
    auto spans = parameter_spans();
    std::uint64_t span_count = 0;
    in.read(reinterpret_cast<char*>(&span_count), sizeof span_count);
    if (span_count != spans.size())
        throw std::runtime_error("load_parameters: architecture mismatch (span count)");
    for (auto& span : spans) {
        std::uint64_t n = 0;
        in.read(reinterpret_cast<char*>(&n), sizeof n);
        if (n != span.size())
            throw std::runtime_error("load_parameters: architecture mismatch (span size)");
        in.read(reinterpret_cast<char*>(span.data()),
                static_cast<std::streamsize>(n * sizeof(float)));
    }
    if (!in) throw std::runtime_error("load_parameters: truncated file");
}

namespace {

/// Spatial side length after `pools` halvings.
std::size_t after_pools(std::size_t side, int pools) {
    for (int i = 0; i < pools; ++i) {
        if (side % 2 != 0) throw std::invalid_argument("architecture: side not divisible");
        side /= 2;
    }
    return side;
}

}  // namespace

Sequential make_tiny_lenet(std::size_t channels, std::size_t side, int classes,
                           std::uint64_t seed) {
    util::Rng rng(seed);
    const std::size_t s2 = after_pools(side, 2);
    Sequential model("TinyLeNet");
    model.add(std::make_unique<Conv2D>(channels, 6, 3, 1, rng))
        .add(std::make_unique<ReLU>())
        .add(std::make_unique<MaxPool2D>())
        .add(std::make_unique<Conv2D>(6, 12, 3, 1, rng))
        .add(std::make_unique<ReLU>())
        .add(std::make_unique<MaxPool2D>())
        .add(std::make_unique<Flatten>())
        .add(std::make_unique<Dense>(12 * s2 * s2, 48, rng))
        .add(std::make_unique<ReLU>())
        .add(std::make_unique<Dense>(48, static_cast<std::size_t>(classes), rng));
    return model;
}

Sequential make_mini_alexnet(std::size_t channels, std::size_t side, int classes,
                             std::uint64_t seed) {
    util::Rng rng(seed);
    const std::size_t s2 = after_pools(side, 2);
    Sequential model("MiniAlexNet");
    model.add(std::make_unique<Conv2D>(channels, 10, 3, 1, rng))
        .add(std::make_unique<ReLU>())
        .add(std::make_unique<MaxPool2D>())
        .add(std::make_unique<Conv2D>(10, 16, 3, 1, rng))
        .add(std::make_unique<ReLU>())
        .add(std::make_unique<Conv2D>(16, 16, 3, 1, rng))
        .add(std::make_unique<ReLU>())
        .add(std::make_unique<MaxPool2D>())
        .add(std::make_unique<Flatten>())
        .add(std::make_unique<Dense>(16 * s2 * s2, 64, rng))
        .add(std::make_unique<ReLU>())
        .add(std::make_unique<Dense>(64, static_cast<std::size_t>(classes), rng));
    return model;
}

Sequential make_micro_resnet(std::size_t channels, std::size_t side, int classes,
                             std::uint64_t seed) {
    util::Rng rng(seed);
    const std::size_t s2 = after_pools(side, 2);
    Sequential model("MicroResNet");
    model.add(std::make_unique<Conv2D>(channels, 12, 3, 1, rng))
        .add(std::make_unique<ReLU>())
        .add(std::make_unique<MaxPool2D>())
        .add(std::make_unique<ResidualBlock>(12, 3, rng))
        .add(std::make_unique<MaxPool2D>())
        .add(std::make_unique<ResidualBlock>(12, 3, rng))
        .add(std::make_unique<Flatten>())
        .add(std::make_unique<Dense>(12 * s2 * s2, 48, rng))
        .add(std::make_unique<ReLU>())
        .add(std::make_unique<Dense>(48, static_cast<std::size_t>(classes), rng));
    return model;
}

}  // namespace mvreju::ml
