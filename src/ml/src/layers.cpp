#include "mvreju/ml/layers.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "mvreju/num/gemm.hpp"
#include "mvreju/obs/metrics.hpp"
#include "mvreju/util/parallel.hpp"

namespace mvreju::ml {

namespace {

/// He-uniform initialisation bound for `fan_in` inputs.
float he_bound(std::size_t fan_in) {
    return std::sqrt(6.0f / static_cast<float>(fan_in));
}

void sgd_momentum(std::vector<float>& params, std::vector<float>& grads,
                  std::vector<float>& velocity, float lr, float momentum) {
    for (std::size_t i = 0; i < params.size(); ++i) {
        velocity[i] = momentum * velocity[i] - lr * grads[i];
        params[i] += velocity[i];
    }
}

/// Below this batch size the transposed-weight copy for the NN GEMM costs
/// more than it saves; Dense::infer uses the NT kernel directly instead.
constexpr std::size_t kDenseGemmMinBatch = 8;

/// GEMM FLOPs (2·M·N·K multiply-adds) spent by the inference kernels.
void count_gemm_flops(std::uint64_t flops) {
    static obs::Counter& counter = obs::metrics().counter("ml.infer.gemm_flops");
    counter.add(flops);
}

/// Run fn(sample) for every sample in [0, nb); parallel only when asked, so
/// nested callers (Sequential already parallelises over its own chunking)
/// can force the serial path with num_threads == 1.
void for_each_sample(std::size_t nb, std::size_t num_threads,
                     const std::function<void(std::size_t)>& fn) {
    if (num_threads == 1 || nb == 1) {
        for (std::size_t s = 0; s < nb; ++s) fn(s);
        return;
    }
    util::parallel_for(nb, fn, num_threads);
}

}  // namespace

// ---------------------------------------------------------------- Dense ---

Dense::Dense(std::size_t inputs, std::size_t outputs, util::Rng& rng)
    : inputs_(inputs),
      outputs_(outputs),
      params_(inputs * outputs + outputs, 0.0f),
      grads_(params_.size(), 0.0f),
      velocity_(params_.size(), 0.0f) {
    if (inputs == 0 || outputs == 0) throw std::invalid_argument("Dense: zero size");
    const float bound = he_bound(inputs);
    for (std::size_t i = 0; i < inputs * outputs; ++i)
        params_[i] = static_cast<float>(rng.uniform(-bound, bound));
}

Tensor Dense::forward(const Tensor& input, bool training) {
    if (input.size() != inputs_)
        throw std::invalid_argument("Dense: expected " + std::to_string(inputs_) +
                                    " input elements, got shape " +
                                    shape_string(input.shape()));
    if (training) last_input_ = input;
    Tensor out({outputs_});
    const float* w = params_.data();
    const float* bias = params_.data() + inputs_ * outputs_;
    for (std::size_t o = 0; o < outputs_; ++o) {
        float acc = bias[o];
        const float* row = w + o * inputs_;
        for (std::size_t i = 0; i < inputs_; ++i) acc += row[i] * input[i];
        out[o] = acc;
    }
    return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
    if (grad_output.size() != outputs_)
        throw std::invalid_argument("Dense: gradient size mismatch");
    if (last_input_.size() != inputs_)
        throw std::logic_error("Dense: backward without training forward");
    Tensor grad_in({inputs_});
    float* gw = grads_.data();
    float* gb = grads_.data() + inputs_ * outputs_;
    const float* w = params_.data();
    for (std::size_t o = 0; o < outputs_; ++o) {
        const float go = grad_output[o];
        gb[o] += go;
        float* grow = gw + o * inputs_;
        const float* wrow = w + o * inputs_;
        for (std::size_t i = 0; i < inputs_; ++i) {
            grow[i] += go * last_input_[i];
            grad_in[i] += go * wrow[i];
        }
    }
    return grad_in;
}

Tensor Dense::infer(const Tensor& batch, Workspace& ws,
                    std::size_t num_threads) const {
    if (batch.rank() != 2 || batch.shape()[1] != inputs_)
        throw std::invalid_argument("Dense: expected (N, " + std::to_string(inputs_) +
                                    ") batch, got " + shape_string(batch.shape()));
    const std::size_t nb = batch.shape()[0];
    Tensor out = ws.take({nb, outputs_});
    const num::KernelBackend& kb = ws.kernels();
    const float* w = params_.data();
    const float* bias = w + inputs_ * outputs_;
    num::fill_rows(nb, outputs_, bias, out.data().data());
    if (nb >= kDenseGemmMinBatch) {
        // Large batch: one transposed weight copy turns the product into the
        // streaming NN kernel (vectorises over outputs).
        std::vector<float>& wt = ws.aux(inputs_ * outputs_);
        num::transpose(outputs_, inputs_, w, wt.data());
        kb.sgemm(nb, outputs_, inputs_, batch.data().data(), wt.data(),
                 out.data().data(), num_threads);
    } else {
        kb.sgemm_nt(nb, outputs_, inputs_, batch.data().data(), w,
                    out.data().data(), num_threads);
    }
    count_gemm_flops(2ull * nb * outputs_ * inputs_);
    return out;
}

void Dense::apply_gradients(float lr, float momentum) {
    sgd_momentum(params_, grads_, velocity_, lr, momentum);
}

void Dense::zero_gradients() { std::fill(grads_.begin(), grads_.end(), 0.0f); }

// --------------------------------------------------------------- Conv2D ---

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t pad, util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      pad_(pad),
      params_(out_channels * in_channels * kernel * kernel + out_channels, 0.0f),
      grads_(params_.size(), 0.0f),
      velocity_(params_.size(), 0.0f) {
    if (in_channels == 0 || out_channels == 0 || kernel == 0)
        throw std::invalid_argument("Conv2D: zero size");
    const float bound = he_bound(in_channels * kernel * kernel);
    const std::size_t weight_count = out_channels * in_channels * kernel * kernel;
    for (std::size_t i = 0; i < weight_count; ++i)
        params_[i] = static_cast<float>(rng.uniform(-bound, bound));
}

Tensor Conv2D::forward(const Tensor& input, bool training) {
    if (input.rank() != 3 || input.shape()[0] != in_channels_)
        throw std::invalid_argument("Conv2D: expected (" +
                                    std::to_string(in_channels_) +
                                    ", H, W) input, got " +
                                    shape_string(input.shape()));
    const std::size_t h = input.shape()[1];
    const std::size_t w = input.shape()[2];
    if (h + 2 * pad_ < kernel_ || w + 2 * pad_ < kernel_)
        throw std::invalid_argument(
            "Conv2D: kernel " + std::to_string(kernel_) + " with pad " +
            std::to_string(pad_) + " exceeds input " + shape_string(input.shape()));
    const std::size_t oh = h + 2 * pad_ - kernel_ + 1;
    const std::size_t ow = w + 2 * pad_ - kernel_ + 1;
    if (training) last_input_ = input;

    Tensor out({out_channels_, oh, ow});
    const float* bias = params_.data() + out_channels_ * in_channels_ * kernel_ * kernel_;
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
        for (std::size_t y = 0; y < oh; ++y) {
            for (std::size_t x = 0; x < ow; ++x) {
                float acc = bias[oc];
                for (std::size_t ic = 0; ic < in_channels_; ++ic) {
                    for (std::size_t ky = 0; ky < kernel_; ++ky) {
                        const std::ptrdiff_t iy =
                            static_cast<std::ptrdiff_t>(y + ky) -
                            static_cast<std::ptrdiff_t>(pad_);
                        if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
                        for (std::size_t kx = 0; kx < kernel_; ++kx) {
                            const std::ptrdiff_t ix =
                                static_cast<std::ptrdiff_t>(x + kx) -
                                static_cast<std::ptrdiff_t>(pad_);
                            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                            acc += weight(oc, ic, ky, kx) *
                                   input.at3(ic, static_cast<std::size_t>(iy),
                                             static_cast<std::size_t>(ix));
                        }
                    }
                }
                out.at3(oc, y, x) = acc;
            }
        }
    }
    return out;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
    if (last_input_.rank() != 3)
        throw std::logic_error("Conv2D: backward without training forward");
    const std::size_t h = last_input_.shape()[1];
    const std::size_t w = last_input_.shape()[2];
    const std::size_t oh = grad_output.shape()[1];
    const std::size_t ow = grad_output.shape()[2];

    Tensor grad_in({in_channels_, h, w});
    float* gbias = grads_.data() + out_channels_ * in_channels_ * kernel_ * kernel_;
    auto gweight = [&](std::size_t oc, std::size_t ic, std::size_t ky,
                       std::size_t kx) -> float& {
        return grads_[((oc * in_channels_ + ic) * kernel_ + ky) * kernel_ + kx];
    };

    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
        for (std::size_t y = 0; y < oh; ++y) {
            for (std::size_t x = 0; x < ow; ++x) {
                const float go = grad_output.at3(oc, y, x);
                if (go == 0.0f) continue;
                gbias[oc] += go;
                for (std::size_t ic = 0; ic < in_channels_; ++ic) {
                    for (std::size_t ky = 0; ky < kernel_; ++ky) {
                        const std::ptrdiff_t iy =
                            static_cast<std::ptrdiff_t>(y + ky) -
                            static_cast<std::ptrdiff_t>(pad_);
                        if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
                        for (std::size_t kx = 0; kx < kernel_; ++kx) {
                            const std::ptrdiff_t ix =
                                static_cast<std::ptrdiff_t>(x + kx) -
                                static_cast<std::ptrdiff_t>(pad_);
                            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                            const auto uy = static_cast<std::size_t>(iy);
                            const auto ux = static_cast<std::size_t>(ix);
                            gweight(oc, ic, ky, kx) += go * last_input_.at3(ic, uy, ux);
                            grad_in.at3(ic, uy, ux) += go * weight(oc, ic, ky, kx);
                        }
                    }
                }
            }
        }
    }
    return grad_in;
}

Tensor Conv2D::infer(const Tensor& batch, Workspace& ws,
                     std::size_t num_threads) const {
    if (batch.rank() != 4 || batch.shape()[1] != in_channels_)
        throw std::invalid_argument("Conv2D: expected (N, " +
                                    std::to_string(in_channels_) +
                                    ", H, W) batch, got " +
                                    shape_string(batch.shape()));
    const std::size_t nb = batch.shape()[0];
    const std::size_t h = batch.shape()[2];
    const std::size_t w = batch.shape()[3];
    if (h + 2 * pad_ < kernel_ || w + 2 * pad_ < kernel_)
        throw std::invalid_argument(
            "Conv2D: kernel " + std::to_string(kernel_) + " with pad " +
            std::to_string(pad_) + " exceeds input " + shape_string(batch.shape()));
    const std::size_t oh = h + 2 * pad_ - kernel_ + 1;
    const std::size_t ow = w + 2 * pad_ - kernel_ + 1;
    const std::size_t ckk = in_channels_ * kernel_ * kernel_;
    const std::size_t ohow = oh * ow;

    Tensor out = ws.take({nb, out_channels_, oh, ow});
    const num::KernelBackend& kb = ws.kernels();
    const float* weights = params_.data();
    const float* bias = weights + out_channels_ * ckk;
    const float* in = batch.data().data();
    float* outp = out.data().data();

    // The column matrix is a *lane* buffer, not a whole-batch unfold: each
    // lane owns one col slice and reuses it for every sample it processes,
    // so scratch scales with the worker count instead of the batch and the
    // steady state allocates nothing (bench/microbench.cpp asserts this).
    // One im2col + GEMM per sample; parallelism partitions samples into
    // contiguous per-lane ranges, so every output element still has a single
    // k-ascending accumulator (bitwise equal to forward()'s naive loops up
    // to ±0 on padding taps) regardless of the lane count.
    const std::size_t workers =
        num_threads == 0 ? util::hardware_threads() : num_threads;
    const std::size_t lanes = nb == 1 ? 1 : std::min(workers, nb);
    std::vector<float>& col = ws.col(lanes * ckk * ohow);
    float* colp = col.data();

    auto run_sample = [&](std::size_t s, float* col_s) {
        kb.im2col(in + s * in_channels_ * h * w, in_channels_, h, w, kernel_, pad_,
                  col_s);
        float* out_s = outp + s * out_channels_ * ohow;
        num::fill_cols(out_channels_, ohow, bias, out_s);
        kb.sgemm(out_channels_, ohow, ckk, weights, col_s, out_s, 1);
    };
    if (lanes == 1) {
        for (std::size_t s = 0; s < nb; ++s) run_sample(s, colp);
    } else {
        const std::size_t per_lane = (nb + lanes - 1) / lanes;
        util::parallel_for(
            lanes,
            [&](std::size_t lane) {
                float* col_s = colp + lane * ckk * ohow;
                const std::size_t lo = lane * per_lane;
                const std::size_t hi = std::min(nb, lo + per_lane);
                for (std::size_t s = lo; s < hi; ++s) run_sample(s, col_s);
            },
            lanes);
    }
    count_gemm_flops(2ull * nb * out_channels_ * ohow * ckk);
    return out;
}

void Conv2D::apply_gradients(float lr, float momentum) {
    sgd_momentum(params_, grads_, velocity_, lr, momentum);
}

void Conv2D::zero_gradients() { std::fill(grads_.begin(), grads_.end(), 0.0f); }

// ----------------------------------------------------------------- ReLU ---

Tensor ReLU::forward(const Tensor& input, bool training) {
    if (training) last_input_ = input;
    Tensor out = input;
    for (std::size_t i = 0; i < out.size(); ++i)
        if (out[i] < 0.0f) out[i] = 0.0f;
    return out;
}

Tensor ReLU::infer(const Tensor& batch, Workspace& ws,
                   std::size_t num_threads) const {
    (void)num_threads;  // elementwise and memory-bound; threading never pays
    Tensor out = ws.take(batch.shape());
    const std::span<const float> in = batch.data();
    const std::span<float> o = out.data();
    for (std::size_t i = 0; i < in.size(); ++i) o[i] = in[i] < 0.0f ? 0.0f : in[i];
    return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
    if (last_input_.size() != grad_output.size())
        throw std::logic_error("ReLU: backward without matching forward");
    Tensor grad_in = grad_output;
    for (std::size_t i = 0; i < grad_in.size(); ++i)
        if (last_input_[i] <= 0.0f) grad_in[i] = 0.0f;
    return grad_in;
}

// ------------------------------------------------------------- MaxPool2D --

Tensor MaxPool2D::forward(const Tensor& input, bool training) {
    if (input.rank() != 3 || input.shape()[1] % 2 != 0 || input.shape()[2] % 2 != 0)
        throw std::invalid_argument("MaxPool2D: expected (C,H,W) with even H, W");
    const std::size_t c = input.shape()[0];
    const std::size_t oh = input.shape()[1] / 2;
    const std::size_t ow = input.shape()[2] / 2;
    Tensor out({c, oh, ow});
    if (training) {
        in_shape_ = input.shape();
        argmax_.assign(out.size(), 0);
    }
    std::size_t flat = 0;
    for (std::size_t ch = 0; ch < c; ++ch) {
        for (std::size_t y = 0; y < oh; ++y) {
            for (std::size_t x = 0; x < ow; ++x, ++flat) {
                float best = -std::numeric_limits<float>::infinity();
                std::size_t best_idx = 0;
                for (std::size_t dy = 0; dy < 2; ++dy) {
                    for (std::size_t dx = 0; dx < 2; ++dx) {
                        const std::size_t iy = 2 * y + dy;
                        const std::size_t ix = 2 * x + dx;
                        const float v = input.at3(ch, iy, ix);
                        if (v > best) {
                            best = v;
                            best_idx =
                                (ch * input.shape()[1] + iy) * input.shape()[2] + ix;
                        }
                    }
                }
                out.at3(ch, y, x) = best;
                if (training) argmax_[flat] = best_idx;
            }
        }
    }
    return out;
}

Tensor MaxPool2D::infer(const Tensor& batch, Workspace& ws,
                        std::size_t num_threads) const {
    if (batch.rank() != 4 || batch.shape()[2] % 2 != 0 || batch.shape()[3] % 2 != 0)
        throw std::invalid_argument(
            "MaxPool2D: expected (N, C, H, W) batch with even H, W, got " +
            shape_string(batch.shape()));
    const std::size_t nb = batch.shape()[0];
    const std::size_t c = batch.shape()[1];
    const std::size_t h = batch.shape()[2];
    const std::size_t w = batch.shape()[3];
    const std::size_t oh = h / 2;
    const std::size_t ow = w / 2;
    Tensor out = ws.take({nb, c, oh, ow});
    const float* in = batch.data().data();
    float* outp = out.data().data();
    for_each_sample(nb, num_threads, [&](std::size_t s) {
        const float* in_s = in + s * c * h * w;
        float* out_s = outp + s * c * oh * ow;
        for (std::size_t ch = 0; ch < c; ++ch) {
            for (std::size_t y = 0; y < oh; ++y) {
                for (std::size_t x = 0; x < ow; ++x) {
                    float best = -std::numeric_limits<float>::infinity();
                    for (std::size_t dy = 0; dy < 2; ++dy)
                        for (std::size_t dx = 0; dx < 2; ++dx) {
                            const float v =
                                in_s[(ch * h + 2 * y + dy) * w + 2 * x + dx];
                            if (v > best) best = v;
                        }
                    out_s[(ch * oh + y) * ow + x] = best;
                }
            }
        }
    });
    return out;
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
    if (in_shape_.empty()) throw std::logic_error("MaxPool2D: backward before forward");
    Tensor grad_in(in_shape_);
    for (std::size_t i = 0; i < grad_output.size(); ++i)
        grad_in[argmax_[i]] += grad_output[i];
    return grad_in;
}

// -------------------------------------------------------------- Flatten ---

Tensor Flatten::forward(const Tensor& input, bool training) {
    if (training) in_shape_ = input.shape();
    return Tensor({input.size()}, {input.data().begin(), input.data().end()});
}

Tensor Flatten::infer(const Tensor& batch, Workspace& ws,
                      std::size_t num_threads) const {
    (void)num_threads;
    if (batch.rank() < 2)
        throw std::invalid_argument("Flatten: expected batch of rank >= 2, got " +
                                    shape_string(batch.shape()));
    const std::size_t nb = batch.shape()[0];
    Tensor out = ws.take({nb, batch.size() / nb});
    std::memcpy(out.data().data(), batch.data().data(),
                batch.size() * sizeof(float));
    return out;
}

Tensor Flatten::backward(const Tensor& grad_output) {
    if (in_shape_.empty()) throw std::logic_error("Flatten: backward before forward");
    return Tensor(in_shape_, {grad_output.data().begin(), grad_output.data().end()});
}

// -------------------------------------------------------------- Softmax ---

namespace {

/// In-place numerically stable softmax over `values[0..n)`.
void softmax_row(float* values, std::size_t n) {
    float max_value = values[0];
    for (std::size_t i = 1; i < n; ++i) max_value = std::max(max_value, values[i]);
    float total = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
        values[i] = std::exp(values[i] - max_value);
        total += values[i];
    }
    for (std::size_t i = 0; i < n; ++i) values[i] /= total;
}

}  // namespace

Tensor Softmax::forward(const Tensor& input, bool training) {
    if (input.size() == 0) throw std::invalid_argument("Softmax: empty input");
    Tensor out = input;
    softmax_row(out.data().data(), out.size());
    if (training) last_output_ = out;
    return out;
}

Tensor Softmax::infer(const Tensor& batch, Workspace& ws,
                      std::size_t num_threads) const {
    (void)num_threads;
    if (batch.rank() != 2 || batch.shape()[1] == 0)
        throw std::invalid_argument("Softmax: expected (N, classes) batch, got " +
                                    shape_string(batch.shape()));
    const std::size_t nb = batch.shape()[0];
    const std::size_t classes = batch.shape()[1];
    Tensor out = ws.take(batch.shape());
    std::memcpy(out.data().data(), batch.data().data(),
                batch.size() * sizeof(float));
    float* rows = out.data().data();
    for (std::size_t s = 0; s < nb; ++s) softmax_row(rows + s * classes, classes);
    return out;
}

Tensor Softmax::backward(const Tensor& grad_output) {
    if (last_output_.size() != grad_output.size())
        throw std::logic_error("Softmax: backward without training forward");
    // dL/dx_i = y_i * (g_i - sum_j g_j y_j)
    float dot = 0.0f;
    for (std::size_t i = 0; i < grad_output.size(); ++i)
        dot += grad_output[i] * last_output_[i];
    Tensor grad_in(last_output_.shape());
    for (std::size_t i = 0; i < grad_in.size(); ++i)
        grad_in[i] = last_output_[i] * (grad_output[i] - dot);
    return grad_in;
}

// -------------------------------------------------------- ResidualBlock ---

ResidualBlock::ResidualBlock(std::size_t channels, std::size_t kernel, util::Rng& rng)
    : conv1_(std::make_unique<Conv2D>(channels, channels, kernel, kernel / 2, rng)),
      relu1_(std::make_unique<ReLU>()),
      conv2_(std::make_unique<Conv2D>(channels, channels, kernel, kernel / 2, rng)) {
    if (kernel % 2 == 0)
        throw std::invalid_argument("ResidualBlock: kernel must be odd to preserve size");
    // Fixup-style initialisation: damping the last convolution makes the
    // block start close to the identity, which keeps training stable without
    // batch normalisation.
    std::vector<std::span<float>> spans;
    conv2_->collect_parameters(spans);
    for (auto span : spans)
        for (float& w : span) w *= 0.1f;
}

ResidualBlock::ResidualBlock(const ResidualBlock& other)
    : conv1_(std::make_unique<Conv2D>(*other.conv1_)),
      relu1_(std::make_unique<ReLU>(*other.relu1_)),
      conv2_(std::make_unique<Conv2D>(*other.conv2_)) {}

Tensor ResidualBlock::forward(const Tensor& input, bool training) {
    Tensor y = conv2_->forward(relu1_->forward(conv1_->forward(input, training), training),
                               training);
    if (y.shape() != input.shape())
        throw std::logic_error("ResidualBlock: shape not preserved");
    for (std::size_t i = 0; i < y.size(); ++i) y[i] += input[i];
    for (std::size_t i = 0; i < y.size(); ++i)
        if (y[i] < 0.0f) y[i] = 0.0f;
    if (training) last_out_ = y;
    return y;
}

Tensor ResidualBlock::infer(const Tensor& batch, Workspace& ws,
                            std::size_t num_threads) const {
    Tensor hidden = conv1_->infer(batch, ws, num_threads);
    {
        const std::span<float> h = hidden.data();
        for (std::size_t i = 0; i < h.size(); ++i)
            if (h[i] < 0.0f) h[i] = 0.0f;
    }
    Tensor y = conv2_->infer(hidden, ws, num_threads);
    ws.give(std::move(hidden));
    if (y.shape() != batch.shape())
        throw std::logic_error("ResidualBlock: shape not preserved");
    const std::span<const float> skip = batch.data();
    const std::span<float> out = y.data();
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += skip[i];
    for (std::size_t i = 0; i < out.size(); ++i)
        if (out[i] < 0.0f) out[i] = 0.0f;
    return y;
}

Tensor ResidualBlock::backward(const Tensor& grad_output) {
    if (last_out_.size() != grad_output.size())
        throw std::logic_error("ResidualBlock: backward without training forward");
    // Final ReLU gradient uses the post-sum activation we cached.
    Tensor grad = grad_output;
    for (std::size_t i = 0; i < grad.size(); ++i)
        if (last_out_[i] <= 0.0f) grad[i] = 0.0f;
    Tensor through = conv1_->backward(relu1_->backward(conv2_->backward(grad)));
    for (std::size_t i = 0; i < through.size(); ++i) through[i] += grad[i];  // skip path
    return through;
}

void ResidualBlock::apply_gradients(float lr, float momentum) {
    conv1_->apply_gradients(lr, momentum);
    conv2_->apply_gradients(lr, momentum);
}

void ResidualBlock::zero_gradients() {
    conv1_->zero_gradients();
    conv2_->zero_gradients();
}

void ResidualBlock::collect_parameters(std::vector<std::span<float>>& out) {
    conv1_->collect_parameters(out);
    conv2_->collect_parameters(out);
}

}  // namespace mvreju::ml
