#include "mvreju/util/args.hpp"

#include <cstdlib>
#include <string_view>

namespace mvreju::util {

Args::Args(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
        std::string_view token(argv[i]);
        if (!token.starts_with("--")) continue;
        std::string key(token.substr(2));
        if (i + 1 < argc && !std::string_view(argv[i + 1]).starts_with("--")) {
            values_[key] = argv[++i];
        } else {
            values_[key] = "";  // bare flag
        }
    }
}

bool Args::has(const std::string& key) const { return values_.contains(key); }

std::string Args::get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

double Args::get(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() || it->second.empty() ? fallback
                                                     : std::strtod(it->second.c_str(), nullptr);
}

int Args::get(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it == values_.end() || it->second.empty()
               ? fallback
               : static_cast<int>(std::strtol(it->second.c_str(), nullptr, 10));
}

}  // namespace mvreju::util
