#include "mvreju/util/args.hpp"

#include <cerrno>
#include <cstdlib>
#include <string_view>

namespace mvreju::util {

namespace {

/// Parse the *entire* string as a long; nullopt on empty/junk/overflow.
std::optional<long> parse_long(const std::string& text) {
    if (text.empty()) return std::nullopt;
    errno = 0;
    char* end = nullptr;
    const long value = std::strtol(text.c_str(), &end, 10);
    if (errno == ERANGE || end == text.c_str() || *end != '\0') return std::nullopt;
    return value;
}

std::optional<double> parse_double(const std::string& text) {
    if (text.empty()) return std::nullopt;
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (errno == ERANGE || end == text.c_str() || *end != '\0') return std::nullopt;
    return value;
}

}  // namespace

Args::Args(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
        std::string_view token(argv[i]);
        if (!token.starts_with("--")) continue;
        std::string key(token.substr(2));
        if (i + 1 < argc && !std::string_view(argv[i + 1]).starts_with("--")) {
            values_[key] = argv[++i];
        } else {
            values_[key] = "";  // bare flag
        }
    }
}

bool Args::has(const std::string& key) const { return values_.contains(key); }

std::string Args::get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

double Args::get(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() || it->second.empty() ? fallback
                                                     : std::strtod(it->second.c_str(), nullptr);
}

int Args::get(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it == values_.end() || it->second.empty()
               ? fallback
               : static_cast<int>(std::strtol(it->second.c_str(), nullptr, 10));
}

int Args::get_int(const std::string& key, int fallback, int min, int max) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    const std::optional<long> parsed = parse_long(it->second);
    if (!parsed.has_value() || *parsed < min || *parsed > max)
        throw ArgError("--" + key + ": expected an integer in [" +
                       std::to_string(min) + ", " + std::to_string(max) +
                       "], got '" + it->second + "'");
    return static_cast<int>(*parsed);
}

double Args::get_double(const std::string& key, double fallback, double min,
                        double max) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    const std::optional<double> parsed = parse_double(it->second);
    if (!parsed.has_value() || *parsed < min || *parsed > max)
        throw ArgError("--" + key + ": expected a number in [" +
                       std::to_string(min) + ", " + std::to_string(max) +
                       "], got '" + it->second + "'");
    return *parsed;
}

std::string Args::host(const std::string& fallback) const {
    auto it = values_.find("host");
    if (it == values_.end()) return fallback;
    const std::string& value = it->second;
    // Dotted-quad IPv4 only (the net layer binds AF_INET): four dot-
    // separated integers in [0, 255].
    int dots = 0;
    std::size_t start = 0;
    bool ok = !value.empty();
    for (std::size_t i = 0; ok && i <= value.size(); ++i) {
        if (i == value.size() || value[i] == '.') {
            const std::optional<long> octet = parse_long(value.substr(start, i - start));
            ok = octet.has_value() && *octet >= 0 && *octet <= 255;
            dots += (i < value.size());
            start = i + 1;
        } else if (value[i] < '0' || value[i] > '9') {
            ok = false;
        }
    }
    if (!ok || dots != 3)
        throw ArgError("--host: expected a dotted-quad IPv4 address, got '" +
                       value + "'");
    return value;
}

}  // namespace mvreju::util
