#include "mvreju/util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mvreju::util {

std::string csv_escape(const std::string& field) {
    const bool needs_quoting =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quoting) return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"') out += "\"\"";
        else out += c;
    }
    out += '"';
    return out;
}

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {
    if (header_.empty()) throw std::invalid_argument("CsvWriter: empty header");
}

void CsvWriter::add_row(std::vector<std::string> cells) {
    if (cells.size() != header_.size())
        throw std::invalid_argument("CsvWriter: row width does not match header");
    rows_.push_back(std::move(cells));
}

std::string CsvWriter::str() const {
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << csv_escape(row[c]);
            out << (c + 1 == row.size() ? "\n" : ",");
        }
    };
    emit(header_);
    for (const auto& row : rows_) emit(row);
    return out.str();
}

void CsvWriter::write(const std::string& path) const {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("CsvWriter: cannot open " + path);
    out << str();
    if (!out) throw std::runtime_error("CsvWriter: write failed for " + path);
}

}  // namespace mvreju::util
