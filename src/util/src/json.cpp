#include "mvreju/util/json.hpp"

#include <cstdlib>
#include <stdexcept>

namespace mvreju::util {

namespace {
[[noreturn]] void type_error(const char* wanted, Json::Type got) {
    throw std::runtime_error(std::string("Json: value is not a ") + wanted +
                             " (type " + std::to_string(static_cast<int>(got)) + ")");
}
}  // namespace

bool Json::boolean() const {
    if (type_ != Type::boolean) type_error("boolean", type_);
    return bool_;
}

double Json::number() const {
    if (type_ != Type::number) type_error("number", type_);
    return number_;
}

const std::string& Json::str() const {
    if (type_ != Type::string) type_error("string", type_);
    return string_;
}

const std::vector<Json>& Json::items() const {
    if (type_ != Type::array) type_error("array", type_);
    return items_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
    if (type_ != Type::object) type_error("object", type_);
    return members_;
}

std::size_t Json::size() const noexcept {
    if (type_ == Type::array) return items_.size();
    if (type_ == Type::object) return members_.size();
    return 0;
}

const Json* Json::find(const std::string& key) const noexcept {
    if (type_ != Type::object) return nullptr;
    for (const auto& [name, value] : members_)
        if (name == key) return &value;
    return nullptr;
}

const Json& Json::at(const std::string& key) const {
    const Json* value = find(key);
    if (value == nullptr) throw std::runtime_error("Json: no member '" + key + "'");
    return *value;
}

const Json& Json::at(std::size_t index) const {
    if (type_ != Type::array) type_error("array", type_);
    if (index >= items_.size())
        throw std::runtime_error("Json: index " + std::to_string(index) +
                                 " out of range (size " + std::to_string(items_.size()) +
                                 ")");
    return items_[index];
}

/// Recursive-descent parser over the raw text. Depth-limited so a hostile
/// input cannot blow the stack.
class JsonParser {
public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    Json parse_document() {
        Json value = parse_value(0);
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters after document");
        return value;
    }

private:
    static constexpr int kMaxDepth = 64;

    [[noreturn]] void fail(const std::string& what) const {
        throw std::runtime_error("Json: " + what + " at byte " + std::to_string(pos_));
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) return false;
        pos_ += word.size();
        return true;
    }

    Json parse_value(int depth) {
        if (depth > kMaxDepth) fail("nesting too deep");
        skip_ws();
        const char c = peek();
        Json value;
        switch (c) {
            case '{': parse_object(value, depth); break;
            case '[': parse_array(value, depth); break;
            case '"':
                value.type_ = Json::Type::string;
                value.string_ = parse_string();
                break;
            case 't':
                if (!consume_literal("true")) fail("bad literal");
                value.type_ = Json::Type::boolean;
                value.bool_ = true;
                break;
            case 'f':
                if (!consume_literal("false")) fail("bad literal");
                value.type_ = Json::Type::boolean;
                value.bool_ = false;
                break;
            case 'n':
                if (!consume_literal("null")) fail("bad literal");
                break;
            default:
                value.type_ = Json::Type::number;
                value.number_ = parse_number();
                break;
        }
        return value;
    }

    void parse_object(Json& value, int depth) {
        value.type_ = Json::Type::object;
        expect('{');
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return;
        }
        for (;;) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            value.members_.emplace_back(std::move(key), parse_value(depth + 1));
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return;
        }
    }

    void parse_array(Json& value, int depth) {
        value.type_ = Json::Type::array;
        expect('[');
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return;
        }
        for (;;) {
            value.items_.push_back(parse_value(depth + 1));
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return;
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': out += parse_unicode_escape(); break;
                default: fail("bad escape");
            }
        }
    }

    std::string parse_unicode_escape() {
        if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            code <<= 4;
            if (c >= '0' && c <= '9') code += static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f') code += static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') code += static_cast<unsigned>(c - 'A' + 10);
            else fail("bad \\u escape");
        }
        // UTF-8 encode the BMP code point (surrogate pairs are not produced
        // by any writer in this repo; a lone surrogate encodes as-is).
        std::string out;
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
        return out;
    }

    double parse_number() {
        // Copy the token out first: the string_view need not be
        // null-terminated, so strtod cannot run on it directly.
        std::size_t end_pos = pos_;
        while (end_pos < text_.size()) {
            const char c = text_[end_pos];
            if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
                c == 'e' || c == 'E') {
                ++end_pos;
            } else {
                break;
            }
        }
        const std::string token(text_.substr(pos_, end_pos - pos_));
        char* end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() || token.empty()) fail("bad number");
        pos_ = end_pos;
        return value;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

Json Json::parse(std::string_view text) { return JsonParser(text).parse_document(); }

}  // namespace mvreju::util
