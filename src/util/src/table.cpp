#include "mvreju/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace mvreju::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
    if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> cells) {
    if (cells.size() != header_.size())
        throw std::invalid_argument("TextTable: row width does not match header");
    rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << row[c] << std::string(widths[c] - row[c].size(), ' ');
            out << (c + 1 == row.size() ? "\n" : "  ");
        }
    };
    emit_row(header_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto& row : rows_) emit_row(row);
    return out.str();
}

std::string fmt(double value, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", digits, value);
    return buf;
}

std::string fmt_pct(double fraction, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f%%", digits, fraction * 100.0);
    return buf;
}

}  // namespace mvreju::util
