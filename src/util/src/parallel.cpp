#include "mvreju/util/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace mvreju::util {

std::size_t hardware_threads() {
    if (const char* env = std::getenv("MVREJU_THREADS")) {
        char* end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && parsed > 0)
            return static_cast<std::size_t>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t num_threads) {
    if (n == 0) return;
    std::size_t workers = num_threads == 0 ? hardware_threads() : num_threads;
    workers = std::min(workers, n);

    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }

    std::atomic<std::size_t> cursor{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::atomic<bool> failed{false};

    auto drain = [&] {
        for (;;) {
            const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= n || failed.load(std::memory_order_relaxed)) return;
            try {
                fn(i);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error) first_error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t t = 0; t + 1 < workers; ++t) pool.emplace_back(drain);
    drain();  // the calling thread is worker 0
    for (std::thread& t : pool) t.join();

    if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mvreju::util
