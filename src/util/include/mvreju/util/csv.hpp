#pragma once

// Minimal CSV writer (RFC-4180 quoting) so the figure benches can export
// their data series for external plotting (`--csv file`).

#include <string>
#include <vector>

namespace mvreju::util {

/// Accumulates rows and renders/writes RFC-4180 CSV. Fields containing
/// commas, quotes or newlines are quoted; embedded quotes are doubled.
class CsvWriter {
public:
    explicit CsvWriter(std::vector<std::string> header);

    void add_row(std::vector<std::string> cells);

    [[nodiscard]] std::string str() const;

    /// Write to a file; throws std::runtime_error on I/O failure.
    void write(const std::string& path) const;

    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Escape one CSV field per RFC 4180.
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace mvreju::util
