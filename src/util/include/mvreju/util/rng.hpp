#pragma once

// Deterministic random number generation for reproducible experiments.
//
// We implement xoshiro256++ (Blackman & Vigna) seeded via SplitMix64 rather
// than relying on std::mt19937 so that every experiment in the repository is
// bit-reproducible across standard-library implementations. `Rng::split`
// derives statistically independent substreams, which the simulators use to
// give each stochastic process (per-module compromise clocks, sensor noise,
// NPC behaviour, ...) its own stream: adding one consumer never perturbs the
// draws seen by another.

#include <array>
#include <cstdint>
#include <cmath>
#include <limits>

namespace mvreju::util {

/// SplitMix64: used for seeding and stream derivation.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoshiro256++ pseudo-random generator with substream splitting.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
        std::uint64_t s = seed;
        for (auto& word : state_) word = splitmix64(s);
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    result_type operator()() noexcept {
        const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Derive an independent substream identified by `stream_id`.
    [[nodiscard]] Rng split(std::uint64_t stream_id) const noexcept {
        std::uint64_t s = state_[0] ^ rotl(state_[3], 7) ^
                          (stream_id * 0xda942042e4dd58b5ULL + 0x2545f4914f6cdd1dULL);
        Rng child(splitmix64(s));
        return child;
    }

    /// Uniform double in [0, 1).
    double uniform() noexcept {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept {
        return lo + (hi - lo) * uniform();
    }

    /// Uniform integer in [0, n). Requires n > 0. Uses rejection to avoid bias.
    std::uint64_t uniform_int(std::uint64_t n) noexcept {
        const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
        for (;;) {
            const std::uint64_t r = (*this)();
            if (r >= threshold) return r % n;
        }
    }

    /// Exponentially distributed sample with the given rate (mean 1/rate).
    double exponential(double rate) noexcept {
        // 1 - uniform() is in (0, 1], so the log argument is never zero.
        return -std::log1p(-uniform()) / rate;
    }

    /// Standard normal via Box-Muller (polar-free variant; uses two uniforms).
    double normal(double mean = 0.0, double stddev = 1.0) noexcept {
        // Draw u1 in (0,1] to keep the log finite.
        const double u1 = 1.0 - uniform();
        const double u2 = uniform();
        const double mag = std::sqrt(-2.0 * std::log(u1));
        return mean + stddev * mag * std::cos(6.283185307179586 * u2);
    }

    /// Bernoulli trial with success probability prob.
    bool bernoulli(double prob) noexcept { return uniform() < prob; }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

}  // namespace mvreju::util
