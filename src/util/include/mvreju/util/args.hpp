#pragma once

// Minimal command-line argument parsing for the benchmark and example
// binaries: `--key value` and `--flag` forms only.

#include <map>
#include <optional>
#include <stdexcept>
#include <string>

namespace mvreju::util {

/// A malformed or out-of-range command-line value. The message names the
/// flag, the accepted range and the offending text, e.g.
/// "--port: expected an integer in [0, 65535], got 'http'".
class ArgError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Parsed `--key value` / `--flag` style arguments.
class Args {
public:
    Args(int argc, const char* const* argv);

    [[nodiscard]] bool has(const std::string& key) const;
    [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const;
    [[nodiscard]] double get(const std::string& key, double fallback) const;
    [[nodiscard]] int get(const std::string& key, int fallback) const;

    /// --- Typed, validated accessors ---
    /// Unlike the lenient get() overloads above (which silently fall back on
    /// garbage), these throw ArgError with a clear message when the value is
    /// present but not a number, has trailing junk, or falls outside
    /// [min, max]. Binaries catch ArgError in main() and exit with the
    /// message.
    [[nodiscard]] int get_int(const std::string& key, int fallback, int min,
                              int max) const;
    [[nodiscard]] double get_double(const std::string& key, double fallback,
                                    double min, double max) const;

    /// Shared serving flags (exporter, serve::Server, bench/client tools).
    /// `--host` must be a dotted-quad IPv4 address.
    [[nodiscard]] std::string host(const std::string& fallback = "127.0.0.1") const;
    /// `--port` in [0, 65535] (0 = ephemeral).
    [[nodiscard]] int port(int fallback) const { return get_int("port", fallback, 0, 65535); }
    /// `--max-streams` in [1, 1000000].
    [[nodiscard]] int max_streams(int fallback) const {
        return get_int("max-streams", fallback, 1, 1000000);
    }
    /// `--batch-max` in [1, 4096] (the pipeline's single-call batch cap).
    [[nodiscard]] int batch_max(int fallback) const {
        return get_int("batch-max", fallback, 1, 4096);
    }
    /// `--batch-delay-us` in [0, 10s].
    [[nodiscard]] int batch_delay_us(int fallback) const {
        return get_int("batch-delay-us", fallback, 0, 10000000);
    }

    /// `--backend NAME` selects the kernel backend models bind at load time
    /// ("scalar", "avx2", "int8"); empty means "resolve the MVREJU_BACKEND
    /// environment variable, then scalar" — pass the result through
    /// num::select_backend(), which owns that fallback chain.
    [[nodiscard]] std::string backend() const { return get("backend", std::string{}); }

    /// Observability flag pair shared by every binary (see obs::Session):
    /// `--trace FILE` writes a Chrome trace-event JSON of the run,
    /// `--metrics FILE` writes a metrics snapshot blob. Empty when absent.
    [[nodiscard]] std::string trace_path() const { return get("trace", std::string{}); }
    [[nodiscard]] std::string metrics_path() const { return get("metrics", std::string{}); }

private:
    std::map<std::string, std::string> values_;
};

}  // namespace mvreju::util
