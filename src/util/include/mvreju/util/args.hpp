#pragma once

// Minimal command-line argument parsing for the benchmark and example
// binaries: `--key value` and `--flag` forms only.

#include <map>
#include <optional>
#include <string>

namespace mvreju::util {

/// Parsed `--key value` / `--flag` style arguments.
class Args {
public:
    Args(int argc, const char* const* argv);

    [[nodiscard]] bool has(const std::string& key) const;
    [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const;
    [[nodiscard]] double get(const std::string& key, double fallback) const;
    [[nodiscard]] int get(const std::string& key, int fallback) const;

    /// Observability flag pair shared by every binary (see obs::Session):
    /// `--trace FILE` writes a Chrome trace-event JSON of the run,
    /// `--metrics FILE` writes a metrics snapshot blob. Empty when absent.
    [[nodiscard]] std::string trace_path() const { return get("trace", std::string{}); }
    [[nodiscard]] std::string metrics_path() const { return get("metrics", std::string{}); }

private:
    std::map<std::string, std::string> values_;
};

}  // namespace mvreju::util
