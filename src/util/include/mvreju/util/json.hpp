#pragma once

// Minimal read-only JSON document model. The repo emits JSON in several
// places (metrics blobs, traces, flight-recorder postmortem dumps, bench
// results); this parser lets the postmortem tooling and the tests consume
// those artifacts without an external dependency. It is a strict
// recursive-descent parser for the JSON the repo itself produces — objects,
// arrays, strings (with escapes), numbers, booleans, null — not a lenient
// general-purpose one: trailing garbage, comments and unquoted keys are
// errors.

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mvreju::util {

/// An immutable parsed JSON value.
class Json {
public:
    enum class Type { null, boolean, number, string, array, object };

    /// Parse a complete document; throws std::runtime_error (with byte
    /// offset) on malformed input or trailing non-whitespace.
    [[nodiscard]] static Json parse(std::string_view text);

    Json() = default;

    [[nodiscard]] Type type() const noexcept { return type_; }
    [[nodiscard]] bool is_null() const noexcept { return type_ == Type::null; }
    [[nodiscard]] bool is_boolean() const noexcept { return type_ == Type::boolean; }
    [[nodiscard]] bool is_number() const noexcept { return type_ == Type::number; }
    [[nodiscard]] bool is_string() const noexcept { return type_ == Type::string; }
    [[nodiscard]] bool is_array() const noexcept { return type_ == Type::array; }
    [[nodiscard]] bool is_object() const noexcept { return type_ == Type::object; }

    /// Typed accessors; throw std::runtime_error on a type mismatch.
    [[nodiscard]] bool boolean() const;
    [[nodiscard]] double number() const;
    [[nodiscard]] const std::string& str() const;
    [[nodiscard]] const std::vector<Json>& items() const;
    [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const;

    /// Array length or object member count (0 for scalars).
    [[nodiscard]] std::size_t size() const noexcept;

    /// Object member lookup; nullptr when absent (or not an object).
    [[nodiscard]] const Json* find(const std::string& key) const noexcept;
    /// Object member lookup; throws std::runtime_error when absent.
    [[nodiscard]] const Json& at(const std::string& key) const;
    /// Array element; throws std::runtime_error when out of range.
    [[nodiscard]] const Json& at(std::size_t index) const;

private:
    friend class JsonParser;
    Type type_ = Type::null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Json> items_;
    std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace mvreju::util
