#pragma once

// Plain-text table rendering used by the benchmark harnesses to print
// paper-style result tables (Tables II-VIII).

#include <string>
#include <vector>

namespace mvreju::util {

/// Column-aligned text table. Rows are added as vectors of pre-formatted
/// cells; `str()` renders with a header separator, matching how the paper's
/// tables are reported in the benchmark output.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    void add_row(std::vector<std::string> cells);

    /// Render the table. Every column is left-padded to its widest cell.
    [[nodiscard]] std::string str() const;

    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` significant decimal places.
[[nodiscard]] std::string fmt(double value, int digits = 6);

/// Format as a percentage with `digits` decimal places (input is a fraction).
[[nodiscard]] std::string fmt_pct(double fraction, int digits = 2);

}  // namespace mvreju::util
