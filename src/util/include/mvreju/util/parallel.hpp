#pragma once

// Shared parallel execution layer for the embarrassingly-parallel hot paths
// (Monte-Carlo replications, fault-injection sites, parameter-sweep grids,
// per-state MRGP rows). Design rules that every caller relies on:
//
//  - Determinism: parallel_for runs fn(i) exactly once per index and each
//    index writes only its own output slot. Any randomness must come from a
//    per-index substream (util::Rng::split keyed by the index), never from a
//    shared generator — then results are bit-identical for every thread
//    count, including 1.
//  - Exceptions: the first exception thrown by any index is rethrown on the
//    calling thread after all workers have stopped.
//  - Thread count: 0 means auto (hardware_threads(), overridable with the
//    MVREJU_THREADS environment variable). Serial execution (n <= 1 or one
//    thread) runs inline with zero scheduling overhead.

#include <cstddef>
#include <functional>

namespace mvreju::util {

/// Worker count used by parallel_for when num_threads == 0: the value of
/// MVREJU_THREADS when set to a positive integer, else
/// std::thread::hardware_concurrency() (at least 1).
[[nodiscard]] std::size_t hardware_threads();

/// Run fn(i) for every i in [0, n), distributing indices over worker
/// threads with a shared atomic cursor (dynamic load balancing; Monte-Carlo
/// trajectory lengths vary widely, so static blocks would straggle).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t num_threads = 0);

}  // namespace mvreju::util
