#pragma once

// Textual DSPN interchange format — the repository's analogue of the
// TimeNET model files the paper publishes on Zenodo. A net is a sequence of
// line-oriented declarations:
//
//   # comment (also after declarations)
//   place <name> [initial_tokens]
//   exponential <name> rate=<double>
//   deterministic <name> delay=<double>
//   immediate <name> [weight=<double>] [priority=<int>]
//   arc <place> -> <transition> [multiplicity]
//   arc <transition> -> <place> [multiplicity]
//   inhibitor <place> -o <transition> [threshold]
//
// Names may contain any non-whitespace characters and must be unique within
// their kind. Marking-dependent rates/weights and guard functions are code
// and cannot be expressed; serializing a net containing them throws.

#include <iosfwd>
#include <string>

#include "mvreju/dspn/net.hpp"

namespace mvreju::dspn {

/// Render a net in the textual format. Throws std::invalid_argument when the
/// net uses marking-dependent rates/weights or guards.
[[nodiscard]] std::string to_text(const PetriNet& net);

/// Parse a net from the textual format. Throws std::runtime_error with a
/// line-numbered message on malformed input.
[[nodiscard]] PetriNet from_text(const std::string& text);

/// Stream variants of the above.
void save_net(const PetriNet& net, std::ostream& out);
[[nodiscard]] PetriNet load_net(std::istream& in);

}  // namespace mvreju::dspn
