#pragma once

// Graphviz export of a Petri net (structure) and of a tangible reachability
// graph, for documentation and model debugging.

#include <string>

#include "mvreju/dspn/net.hpp"
#include "mvreju/dspn/reachability.hpp"

namespace mvreju::dspn {

/// Render the net structure (places, transitions, arcs) as Graphviz dot.
/// Immediate transitions are thin bars, exponential ones open boxes,
/// deterministic ones filled boxes — mirroring the paper's DSPN notation.
[[nodiscard]] std::string to_dot(const PetriNet& net);

/// Render the tangible reachability graph with markings as node labels.
[[nodiscard]] std::string to_dot(const ReachabilityGraph& graph);

}  // namespace mvreju::dspn
