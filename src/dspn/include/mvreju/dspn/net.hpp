#pragma once

// Deterministic and Stochastic Petri Net (DSPN) core representation.
//
// Supported net class (matching what the paper's TimeNET models use):
//   - places with non-negative integer markings;
//   - immediate transitions with priorities and marking-dependent weights;
//   - exponential transitions with marking-dependent rates;
//   - deterministic transitions with fixed delays;
//   - input, output and inhibitor arcs with multiplicities;
//   - boolean guard functions over the current marking.
//
// Semantics follow Marsan & Chiola: immediate transitions fire in zero time
// (markings enabling them are "vanishing"); enabled deterministic transitions
// keep their clock across exponential firings that leave them enabled and
// lose it when disabled (enabling restart).

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace mvreju::dspn {

/// A marking assigns a token count to every place, indexed by PlaceId.
using Marking = std::vector<int>;

/// Marking-dependent scalar (rate, weight or delay).
using MarkingFn = std::function<double(const Marking&)>;
/// Marking-dependent enabling predicate.
using GuardFn = std::function<bool(const Marking&)>;

/// Strongly typed handle to a place.
struct PlaceId {
    std::size_t index = 0;
    friend bool operator==(PlaceId, PlaceId) = default;
};

/// Strongly typed handle to a transition.
struct TransitionId {
    std::size_t index = 0;
    friend bool operator==(TransitionId, TransitionId) = default;
};

enum class TransitionKind { immediate, exponential, deterministic };

/// Number of tokens in `place` under `marking`.
[[nodiscard]] inline int tokens(const Marking& marking, PlaceId place) {
    return marking.at(place.index);
}

/// A Petri net under construction / inspection. Building is append-only;
/// analysis classes take a const reference and never mutate the net.
class PetriNet {
public:
    PlaceId add_place(std::string name, int initial_tokens = 0);

    /// Immediate transition with constant weight. Higher priority fires first.
    TransitionId add_immediate(std::string name, double weight = 1.0, int priority = 1);
    /// Immediate transition with marking-dependent weight.
    TransitionId add_immediate(std::string name, MarkingFn weight, int priority = 1);

    /// Exponential transition with constant rate (must be > 0 when enabled).
    TransitionId add_exponential(std::string name, double rate);
    /// Exponential transition with marking-dependent rate. A rate <= 0
    /// disables the transition in that marking.
    TransitionId add_exponential(std::string name, MarkingFn rate);

    /// Deterministic transition with a fixed firing delay > 0.
    TransitionId add_deterministic(std::string name, double delay);

    void add_input_arc(TransitionId t, PlaceId p, int multiplicity = 1);
    void add_output_arc(TransitionId t, PlaceId p, int multiplicity = 1);
    /// Inhibitor: t is disabled while p holds >= threshold tokens.
    void add_inhibitor_arc(TransitionId t, PlaceId p, int threshold = 1);

    /// Attach an extra enabling predicate to a transition.
    void set_guard(TransitionId t, GuardFn guard);

    /// Change the firing delay of a deterministic transition (used by
    /// parameter sweeps so the net need not be rebuilt per sweep point).
    void set_deterministic_delay(TransitionId t, double delay);

    [[nodiscard]] std::size_t place_count() const noexcept { return places_.size(); }
    [[nodiscard]] std::size_t transition_count() const noexcept { return transitions_.size(); }
    [[nodiscard]] const std::string& place_name(PlaceId p) const;
    [[nodiscard]] const std::string& transition_name(TransitionId t) const;
    [[nodiscard]] TransitionKind kind(TransitionId t) const;
    [[nodiscard]] int priority(TransitionId t) const;

    [[nodiscard]] Marking initial_marking() const;

    /// Structural + guard + rate enabling check.
    [[nodiscard]] bool enabled(TransitionId t, const Marking& marking) const;

    /// Fire an enabled transition; returns the successor marking.
    /// Precondition: enabled(t, marking).
    [[nodiscard]] Marking fire(TransitionId t, const Marking& marking) const;

    /// Rate of an exponential transition in a marking (0 if disabled).
    [[nodiscard]] double rate(TransitionId t, const Marking& marking) const;
    /// Weight of an immediate transition in a marking.
    [[nodiscard]] double weight(TransitionId t, const Marking& marking) const;
    /// Delay of a deterministic transition.
    [[nodiscard]] double delay(TransitionId t) const;

    /// True if any enabled transition in `marking` is immediate.
    [[nodiscard]] bool is_vanishing(const Marking& marking) const;

    /// All transitions of a given kind enabled in `marking`.
    [[nodiscard]] std::vector<TransitionId> enabled_of_kind(const Marking& marking,
                                                            TransitionKind kind) const;

    /// Enabled immediate transitions restricted to the highest enabled
    /// priority class (the only ones allowed to fire by DSPN semantics).
    [[nodiscard]] std::vector<TransitionId> firable_immediates(const Marking& marking) const;

    /// Constant rate/weight of a transition, when it was built from a
    /// constant (std::nullopt for marking-dependent functions). Used by the
    /// textual serializer, which cannot express code.
    [[nodiscard]] std::optional<double> constant_value(TransitionId t) const;
    /// True when a guard function is attached to the transition.
    [[nodiscard]] bool has_guard(TransitionId t) const;

    /// Read-only arc view for structural inspection/export.
    struct ArcView {
        PlaceId place{};
        int multiplicity = 1;
    };
    [[nodiscard]] std::vector<ArcView> input_arcs(TransitionId t) const;
    [[nodiscard]] std::vector<ArcView> output_arcs(TransitionId t) const;
    [[nodiscard]] std::vector<ArcView> inhibitor_arcs(TransitionId t) const;

private:
    struct Arc {
        std::size_t place = 0;
        int multiplicity = 1;
    };

    struct Place {
        std::string name;
        int initial = 0;
    };

    struct Transition {
        std::string name;
        TransitionKind kind = TransitionKind::immediate;
        MarkingFn value;        // rate (exponential) or weight (immediate)
        std::optional<double> constant;  // set when built from a constant
        double delay = 0.0;     // deterministic only
        int priority = 1;       // immediate only
        GuardFn guard;          // optional
        std::vector<Arc> inputs;
        std::vector<Arc> outputs;
        std::vector<Arc> inhibitors;
    };

    void check_place(PlaceId p) const;
    void check_transition(TransitionId t) const;

    std::vector<Place> places_;
    std::vector<Transition> transitions_;
};

}  // namespace mvreju::dspn
