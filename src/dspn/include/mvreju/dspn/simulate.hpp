#pragma once

// Discrete-event Monte-Carlo simulation of DSPNs. Used to cross-validate the
// exact MRGP solver (and mirroring how the paper obtained its TimeNET
// numbers, which are simulation-based). Steady-state rewards are estimated
// with the batch-means method: after a warm-up period the horizon is split
// into batches whose means are treated as approximately independent samples.

#include <cstdint>

#include "mvreju/dspn/net.hpp"
#include "mvreju/dspn/solver.hpp"
#include "mvreju/num/stats.hpp"

namespace mvreju::dspn {

struct SimulationOptions {
    double horizon = 1.0e6;      ///< total simulated time
    double warmup = 1.0e4;       ///< discarded initial transient
    std::size_t batches = 20;    ///< batch-means batches
    std::uint64_t seed = 42;     ///< RNG seed (deterministic reproduction)
};

struct SimulationEstimate {
    num::ConfidenceInterval ci;  ///< 95% batch-means confidence interval
    double mean = 0.0;           ///< time-averaged reward over all batches
};

/// Simulate the net and estimate the steady-state expected reward
/// E[reward(marking)] (time average). Deterministic transitions follow the
/// enabling-restart policy: the clock persists across firings that keep the
/// transition enabled and is discarded when it gets disabled.
[[nodiscard]] SimulationEstimate simulate_steady_state_reward(const PetriNet& net,
                                                              const RewardFn& reward,
                                                              const SimulationOptions& options);

/// Ensemble transient estimate: E[reward(marking at time t)] over
/// `replications` independent runs from the initial marking, with a 95%
/// replication-level confidence interval. Works for full DSPNs (the exact
/// transient solver only covers purely exponential nets). Replications run
/// on the shared task pool (`num_threads`; 0 = auto, 1 = serial); each
/// replication draws from its own RNG substream keyed by its index, so the
/// estimate is bit-identical for every thread count.
[[nodiscard]] SimulationEstimate simulate_transient_reward(const PetriNet& net,
                                                           const RewardFn& reward,
                                                           double t,
                                                           std::size_t replications,
                                                           std::uint64_t seed,
                                                           std::size_t num_threads = 0);

/// Ensemble first-passage estimate: mean time until `predicate` first holds
/// (sampled over `replications` runs, each censored at `max_time`; censored
/// runs contribute max_time, so the estimate is a lower bound when censoring
/// occurs — the result reports how many runs were censored). Parallel over
/// replications with the same determinism guarantee as
/// simulate_transient_reward.
struct FirstPassageEstimate {
    num::ConfidenceInterval ci;
    double mean = 0.0;
    std::size_t censored = 0;
};
[[nodiscard]] FirstPassageEstimate simulate_mean_time_to(
    const PetriNet& net, const std::function<bool(const Marking&)>& predicate,
    double max_time, std::size_t replications, std::uint64_t seed,
    std::size_t num_threads = 0);

}  // namespace mvreju::dspn
