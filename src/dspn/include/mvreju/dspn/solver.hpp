#pragma once

// Exact steady-state solvers over the tangible reachability graph:
//
//  - spn_steady_state: the net must contain no reachable deterministic
//    transition; the tangible graph is then a CTMC, solved directly.
//
//  - dspn_steady_state: Markov-regenerative (MRGP) method for DSPNs in which
//    at most one deterministic transition is enabled in any tangible marking
//    (the standard DSPN solvability class, and the class of the paper's
//    models). Regeneration points are deterministic firings/disablings and
//    every exponential firing in purely-exponential states. The embedded
//    Markov chain is built with subordinated-CTMC transient analysis
//    (uniformization) over each deterministic enabling interval.
//
// Both return the steady-state probability of each tangible state, from
// which expected rewards (Eq. 3 of the paper) are evaluated.

#include <cstddef>
#include <functional>
#include <vector>

#include "mvreju/dspn/reachability.hpp"
#include "mvreju/num/sparse_markov.hpp"

namespace mvreju::dspn {

/// Reward assigned to a tangible marking (e.g. the state reliability R_ijk).
using RewardFn = std::function<double(const Marking&)>;

/// Controls for dspn_solve. Defaults reproduce spn_steady_state /
/// dspn_steady_state bit-for-bit.
struct DspnSolveOptions {
    /// Tolerances and cutoffs forwarded to the stationary solver. The
    /// `initial` / `sweeps_out` members are overwritten internally — use the
    /// warm-start fields below instead.
    num::StationaryOptions stationary{};
    /// Warm start for the purely exponential path (CTMC steady state);
    /// non-owning, used when the size matches the tangible state count.
    /// Ignored below stationary.dense_cutoff, where the dense LU path keeps
    /// results bit-identical to a cold solve.
    const std::vector<double>* warm_pi = nullptr;
    /// Warm start for the MRGP path's embedded-chain stationary solve
    /// (same matching and dense-cutoff rules as warm_pi).
    const std::vector<double>* warm_nu = nullptr;
};

/// Full result of a steady-state solve, exposing what sweep drivers need to
/// warm-start neighbouring grid points and to account for savings.
struct DspnSolution {
    /// Steady-state distribution over tangible states.
    std::vector<double> pi;
    /// Stationary distribution of the embedded Markov chain (MRGP path
    /// only; empty when the net is purely exponential).
    std::vector<double> nu;
    /// Gauss-Seidel sweeps used by the stationary solve (0 when the dense
    /// LU path was taken).
    std::size_t sweeps = 0;
};

/// Steady-state solve dispatching on the net class: purely exponential nets
/// take the CTMC path, nets with deterministic transitions the MRGP path
/// (same solvability class as dspn_steady_state). Warm starts seed the
/// Gauss-Seidel iteration from a neighbouring grid point's solution.
[[nodiscard]] DspnSolution dspn_solve(const ReachabilityGraph& graph,
                                      const DspnSolveOptions& options = {});

/// Steady-state solve of a *delay family*: graphs that share the same
/// structure (state space, edges, branch probabilities) and the same
/// exponential rates, differing only in deterministic delays. The expensive
/// subordinated-CTMC power pass of the MRGP method does not depend on the
/// delay — only the Poisson re-weighting does — so one pass per regeneration
/// period serves every member (num::transient_rows). Result f is
/// bit-identical to dspn_solve(*graphs[f], options[f]); cost is roughly one
/// solve at the largest delay instead of one per member. The caller is
/// responsible for the sharing preconditions (the sweep engine checks them
/// via structure and graph-rate hashes); violating them silently corrupts
/// results. Throws std::invalid_argument on size mismatches.
[[nodiscard]] std::vector<DspnSolution> dspn_solve_family(
    const std::vector<const ReachabilityGraph*>& graphs,
    const std::vector<DspnSolveOptions>& options);

/// Steady-state distribution over the tangible states of `graph`.
/// Requires the net to have no reachable deterministic transitions.
[[nodiscard]] std::vector<double> spn_steady_state(const ReachabilityGraph& graph);

/// Steady-state distribution via the MRGP method. Also handles the purely
/// exponential case (falls back to spn_steady_state). Requires at most one
/// deterministic transition enabled per tangible marking.
[[nodiscard]] std::vector<double> dspn_steady_state(const ReachabilityGraph& graph);

/// Expected steady-state reward: sum_m pi(m) * reward(m)   (paper Eq. 3).
[[nodiscard]] double expected_reward(const ReachabilityGraph& graph,
                                     const std::vector<double>& pi, const RewardFn& reward);

/// Steady-state probability that `predicate` holds.
[[nodiscard]] double probability(const ReachabilityGraph& graph,
                                 const std::vector<double>& pi,
                                 const std::function<bool(const Marking&)>& predicate);

/// Exact transient distribution at time t (uniformization), starting from
/// the net's initial marking. Requires a purely exponential net (no
/// deterministic transitions) — use simulate_transient_reward for DSPNs.
[[nodiscard]] std::vector<double> spn_transient_distribution(
    const ReachabilityGraph& graph, double t);

/// Steady-state firing rate (throughput) of an exponential transition:
/// sum over markings of pi(m) * rate(t, m). Reports, e.g., how often the
/// rejuvenation transition Trj actually completes per unit time.
[[nodiscard]] double expected_firing_rate(const ReachabilityGraph& graph,
                                          const std::vector<double>& pi, TransitionId t);

/// Exact mean first-passage time from the initial marking into the set of
/// tangible states satisfying `predicate` (expected hitting time of the
/// underlying CTMC). Requires a purely exponential net (throws
/// std::invalid_argument otherwise). Returns 0 when the predicate already
/// holds in the initial marking. Throws std::invalid_argument when no
/// reachable tangible marking satisfies the predicate, and
/// std::runtime_error when some non-satisfying state cannot reach the
/// predicate set (the mean first-passage time is infinite).
[[nodiscard]] double spn_mean_time_to(const ReachabilityGraph& graph,
                                      const std::function<bool(const Marking&)>& predicate);

}  // namespace mvreju::dspn
