#pragma once

// Tangible reachability graph construction with vanishing-marking
// elimination. Vanishing markings (those enabling immediate transitions) are
// resolved on the fly into probability distributions over tangible markings,
// firing only the highest enabled priority class and branching by weight.

#include <cstddef>
#include <map>
#include <optional>
#include <vector>

#include "mvreju/dspn/net.hpp"

namespace mvreju::dspn {

/// Probability-weighted pointer to a tangible state.
struct Branch {
    std::size_t target = 0;
    double probability = 0.0;
};

/// An exponential edge of the tangible graph. `rate` already folds in the
/// branching probability of any vanishing chain crossed after the firing
/// (effective rate = transition rate x resolution probability). The
/// resolution probability is also kept separately so a structurally
/// identical net with different rates can re-rate the edge in place
/// (rebind) without re-resolving the vanishing chain.
struct ExpEdge {
    std::size_t target = 0;
    double rate = 0.0;
    double probability = 1.0;
    TransitionId via{};
};

/// Explicit tangible state space of a (D)SPN.
class ReachabilityGraph {
public:
    /// Build the graph by exhaustive exploration from the initial marking.
    /// Throws if more than `max_states` tangible markings are reachable or a
    /// cycle of immediate transitions is encountered.
    explicit ReachabilityGraph(const PetriNet& net, std::size_t max_states = 200'000);

    /// Re-point this graph at a *structurally identical* net whose rates
    /// and/or deterministic delays differ, re-rating every exponential edge
    /// in place (new rate x stored resolution probability) instead of
    /// re-exploring the state space. Validity conditions (the sweep engine
    /// checks them via the net's structure hash, and this method re-validates
    /// what it cheaply can):
    ///   - same places, initial marking, transition kinds/arcs/priorities;
    ///   - guards and immediate weights must not depend on the swept
    ///     parameters (branch probabilities are reused, not recomputed);
    ///   - every re-rated edge must stay enabled (rate > 0) in its marking.
    /// Returns false — leaving the graph unchanged — when a check fails; the
    /// caller must then fall back to a full rebuild. The new net must
    /// outlive the graph.
    [[nodiscard]] bool rebind(const PetriNet& net);

    [[nodiscard]] const PetriNet& net() const noexcept { return *net_; }
    [[nodiscard]] std::size_t state_count() const noexcept { return markings_.size(); }
    [[nodiscard]] const Marking& marking(std::size_t state) const;
    /// All tangible markings, indexed by state. Stable across rebind(), so
    /// reward functions evaluated over a sweep can capture it once.
    [[nodiscard]] const std::vector<Marking>& markings() const noexcept {
        return markings_;
    }

    /// Index of a tangible marking, if reachable.
    [[nodiscard]] std::optional<std::size_t> find(const Marking& marking) const;

    /// Distribution over tangible states equivalent to the initial marking
    /// (a single branch unless the initial marking is vanishing).
    [[nodiscard]] const std::vector<Branch>& initial_distribution() const noexcept {
        return initial_;
    }

    [[nodiscard]] const std::vector<ExpEdge>& exponential_edges(std::size_t state) const;

    /// Deterministic transitions enabled in a tangible state.
    [[nodiscard]] const std::vector<TransitionId>& deterministic_enabled(
        std::size_t state) const;

    /// Tangible branching distribution caused by firing deterministic
    /// transition `t` in `state`. Precondition: t is enabled in state.
    [[nodiscard]] const std::vector<Branch>& deterministic_branches(std::size_t state,
                                                                    TransitionId t) const;

    /// True if any reachable tangible state enables a deterministic transition.
    [[nodiscard]] bool has_deterministic() const noexcept { return has_deterministic_; }

private:
    std::size_t intern(const Marking& marking);
    std::vector<Branch> resolve(const Marking& marking, std::vector<Marking>& path);

    // Pointer, not reference: rebind() swaps the net and the sweep engine
    // copies prototype graphs before re-rating them (copies are memberwise).
    const PetriNet* net_;
    std::size_t max_states_;
    std::vector<Marking> markings_;
    std::map<Marking, std::size_t> index_;
    std::vector<Branch> initial_;
    std::vector<std::vector<ExpEdge>> exp_edges_;
    std::vector<std::vector<TransitionId>> det_enabled_;
    // (state, deterministic transition) -> branches
    std::map<std::pair<std::size_t, std::size_t>, std::vector<Branch>> det_branches_;
    bool has_deterministic_ = false;
};

}  // namespace mvreju::dspn
