#pragma once

// Parameter-sweep engine over DSPN steady-state solves.
//
// Benches and studies evaluate the same net family at hundreds of grid
// points that differ only in rates, deterministic delays and reward
// parameters. Solving every point cold repeats three kinds of work the
// engine reuses instead:
//
//  1. Reachability. The tangible graph depends only on the enabling
//     structure (places, initial marking, arcs, inhibitors, guards,
//     priorities, immediate weights) — not on exponential rates or
//     deterministic delays. The engine builds one prototype graph per
//     distinct structure hash and re-rates a copy in place per grid point
//     (ReachabilityGraph::rebind), falling back to a full rebuild when the
//     hash or rebind validation disagrees.
//
//  2. Iteration. Neighbouring grid points have neighbouring solutions, so
//     Gauss-Seidel solves are warm-started from the nearest already-solved
//     point of the same structure. Points are released in deterministic
//     wavefront chunks (the anchor set a point may warm-start from is fixed
//     by grid order, never by thread timing), so results are bit-identical
//     at every thread count. Solves at or below the dense cutoff take the
//     direct LU path, which ignores warm starts entirely — those results
//     are bit-identical to cold solves by construction.
//
//  3. The solve itself. Results are memoized in memory and, when a cache
//     directory is configured, in an on-disk content-addressed store keyed
//     by structure hash + the re-rated graph's numeric content (edge rates,
//     branch probabilities, deterministic delays) + solver tolerances.
//     Content addressing is what the solve actually depends on, so grid
//     points that differ only in reward parameters — or in parameters a
//     given structure ignores, like the rejuvenation interval of a
//     no-rejuvenation configuration — solve once.
//
//  4. Delay families. Grid points whose graphs share structure and
//     exponential rates and differ only in deterministic delays are solved
//     as one batch (dspn_solve_family): the subordinated-CTMC power pass of
//     the MRGP method is delay-independent, so a delay sweep pays for its
//     largest delay once instead of per point, bit-identically.
//
// Caveat on cached iterative solves: above the dense cutoff a warm-started
// Gauss-Seidel result is tolerance-accurate but not a bit-canonical
// function of the key (it depends on the warm-start anchor). Within one
// run() call results are still bit-identical across thread counts; across
// differently-shaped grids or cache states they agree to solver tolerance.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mvreju/dspn/reachability.hpp"
#include "mvreju/dspn/simulate.hpp"
#include "mvreju/dspn/solver.hpp"
#include "mvreju/num/sparse_markov.hpp"

namespace mvreju::dspn {

/// Hash of a net's enabling structure: places, names, initial marking,
/// transition kinds/priorities/arcs/inhibitors, guard presence and immediate
/// constant weights. Exponential rates and deterministic delays are
/// deliberately excluded — they are the re-ratable dimension of a sweep.
/// Marking-dependent *rates* are invisible here but surface in the re-rated
/// graph (and thus in graph_rates_hash and the cache key); marking-dependent
/// *immediate weights* shape the reused branch probabilities, so the factory
/// must not vary them with the swept parameters.
[[nodiscard]] std::uint64_t structure_hash(const PetriNet& net);

/// Hash of a net's numeric (re-ratable) content: exponential/immediate
/// constants and deterministic delays. Informational (cheap change
/// detection on the net itself); the cache key hashes the re-rated graph
/// instead, which also sees marking-dependent rates evaluated per marking.
[[nodiscard]] std::uint64_t numeric_hash(const PetriNet& net);

/// Hash of a reachability graph's delay-independent numeric content: per
/// state, the exponential edges (target, effective rate, branch
/// probability), enabled deterministic transitions and their branch
/// distributions, plus the initial distribution. Everything a steady-state
/// solve depends on except deterministic delays — the cache key adds those
/// separately, and delay-family grouping deliberately omits them.
[[nodiscard]] std::uint64_t graph_rates_hash(const ReachabilityGraph& graph);

struct SweepOptions {
    /// Tolerances forwarded to every stationary solve.
    num::StationaryOptions stationary{};
    /// Warm-start Gauss-Seidel solves from the nearest solved neighbour.
    bool warm_start = true;
    /// Directory for the on-disk result cache; empty disables it. Must be
    /// dedicated to one net family (the factory is not part of the key).
    std::string cache_dir;
    /// Grid points released per wavefront chunk (after a serial first
    /// point); 0 picks max(8, 2 x worker threads).
    std::size_t chunk = 0;
    /// Worker threads for the per-chunk fan-out (0 = auto, 1 = serial).
    std::size_t threads = 0;
    /// Base seed for run_simulated substreams (split per grid index).
    std::uint64_t seed = 42;
};

/// One solved grid point.
struct SweepPoint {
    std::vector<double> params;
    std::vector<double> pi;          ///< steady-state tangible distribution
    std::uint64_t structure = 0;     ///< structure hash (markings() lookup key)
    std::size_t sweeps = 0;          ///< Gauss-Seidel sweeps (0 = dense/cached)
    bool cache_hit = false;          ///< served from memory or disk
    bool disk_hit = false;           ///< served from the on-disk cache
    bool rebuilt = false;            ///< needed a cold reachability build
    bool warm_started = false;
};

/// Cumulative engine counters (also mirrored to obs metrics
/// dspn.sweep.{points,cache_hits,rebuilds,warmstart_iters_saved}).
struct SweepStats {
    std::size_t points = 0;
    std::size_t solves = 0;        ///< unique keys that ran a numeric solve
    std::size_t cache_hits = 0;    ///< memory + disk hits (incl. in-run aliases)
    std::size_t disk_hits = 0;
    std::size_t rebuilds = 0;      ///< cold reachability builds
    std::size_t rebinds = 0;       ///< graphs served by re-rating a prototype
    std::size_t family_batches = 0;   ///< delay-family solves (>= 2 members)
    std::size_t family_members = 0;   ///< solves served by those batches
    std::size_t warm_started = 0;
    std::size_t warmstart_iters_saved = 0;  ///< vs the structure's cold solve
};

/// Reward evaluated at a grid point: reward parameters live in `params`,
/// state occupancy in the marking.
using SweepRewardFn = std::function<double(const std::vector<double>& params,
                                           const Marking&)>;

/// A reachability graph re-rated (or rebuilt) for one parameter vector,
/// owning the net it is bound to. Movable, not copyable.
class BoundGraph {
public:
    BoundGraph(std::unique_ptr<PetriNet> net, ReachabilityGraph graph)
        : net_(std::move(net)), graph_(std::move(graph)) {}
    [[nodiscard]] const PetriNet& net() const noexcept { return *net_; }
    [[nodiscard]] const ReachabilityGraph& graph() const noexcept { return graph_; }

private:
    std::unique_ptr<PetriNet> net_;  // stable address; graph_ points at it
    ReachabilityGraph graph_;
};

class SweepEngine {
public:
    /// Builds the net for one parameter vector. Must be a pure function of
    /// its argument: everything that varies across the grid has to be
    /// derived from `params` (the cache key covers params and the net's
    /// numeric constants, nothing else).
    using Factory = std::function<PetriNet(const std::vector<double>&)>;

    explicit SweepEngine(Factory factory, SweepOptions options = {});

    /// Solve every grid point. Deterministic for any thread count: identical
    /// grids yield bit-identical pi vectors whether run serially, with the
    /// engine's fan-out, or split across processes sharing a cache_dir.
    [[nodiscard]] std::vector<SweepPoint> run(
        const std::vector<std::vector<double>>& grid);

    /// Solve a single point (serial shortcut for run({params}).front()).
    [[nodiscard]] SweepPoint solve(const std::vector<double>& params);

    /// Monte-Carlo counterpart of run(): per-point batch-means simulation
    /// with an RNG substream split per grid index (bit-identical at any
    /// thread count). Bypasses the caches — estimates are stochastic.
    [[nodiscard]] std::vector<SimulationEstimate> run_simulated(
        const std::vector<std::vector<double>>& grid, const SweepRewardFn& reward,
        const SimulationOptions& base);

    /// Expected steady-state reward of a solved point (paper Eq. 3),
    /// evaluated over the markings of the point's structure prototype.
    [[nodiscard]] double expected_reward(const SweepPoint& point,
                                         const SweepRewardFn& reward) const;

    /// Tangible markings of the structure prototype serving `params`
    /// (building the prototype if this structure was never seen). Indexing
    /// matches SweepPoint::pi for every point of the same structure.
    [[nodiscard]] const std::vector<Marking>& markings(
        const std::vector<double>& params);

    /// Reachability graph re-rated for `params`, for analyses beyond the
    /// steady state (first passage, transient). Reuses the structure
    /// prototype via rebind when valid.
    [[nodiscard]] BoundGraph graph(const std::vector<double>& params);

    [[nodiscard]] const SweepStats& stats() const noexcept { return stats_; }
    [[nodiscard]] const SweepOptions& options() const noexcept { return options_; }

private:
    struct Prototype {
        std::unique_ptr<PetriNet> net;   // the graph points at this net
        std::unique_ptr<ReachabilityGraph> graph;
        std::size_t cold_sweeps = 0;     // sweeps of the first cold solve
        bool cold_sweeps_known = false;
    };

    struct Solution {
        std::vector<double> pi;
        std::vector<double> nu;
        std::size_t sweeps = 0;
    };

    struct Anchor {
        std::vector<double> params;
        std::uint64_t structure = 0;
        const Solution* solution = nullptr;  // owned by memory_
    };

    /// Content-addressed key: structure hash + the re-rated graph's numeric
    /// content + its deterministic delays + the solver tolerances.
    [[nodiscard]] std::uint64_t cache_key(std::uint64_t structure, std::uint64_t rates,
                                          const ReachabilityGraph& graph) const;
    /// Prototype for a structure, built cold from `net` on first sight.
    /// Returns (prototype, created-now). Thread-safe.
    std::pair<Prototype*, bool> prototype_for(std::uint64_t structure,
                                              const PetriNet& net);
    [[nodiscard]] const Anchor* nearest_anchor(const std::vector<double>& params,
                                               std::uint64_t structure) const;
    [[nodiscard]] bool disk_load(std::uint64_t key, std::size_t expected_states,
                                 Solution& out) const;
    void disk_store(std::uint64_t key, const std::vector<double>& params,
                    std::uint64_t structure, const Solution& solution) const;

    Factory factory_;
    SweepOptions options_;
    SweepStats stats_;
    mutable std::mutex prototypes_mutex_;
    std::map<std::uint64_t, Prototype> prototypes_;
    // Key -> solution. Pointers into this map stay valid (node-based).
    std::map<std::uint64_t, Solution> memory_;
    std::vector<Anchor> anchors_;  // completed chunks, grid order
};

}  // namespace mvreju::dspn
