#include "mvreju/dspn/text_format.hpp"

#include <iomanip>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace mvreju::dspn {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
    throw std::runtime_error("dspn text, line " + std::to_string(line) + ": " + message);
}

/// key=value token; throws on mismatch of the expected key.
double parse_kv(const std::string& token, const std::string& key, std::size_t line) {
    const std::string prefix = key + "=";
    if (token.rfind(prefix, 0) != 0) fail(line, "expected " + prefix + "<value>");
    try {
        return std::stod(token.substr(prefix.size()));
    } catch (const std::exception&) {
        fail(line, "cannot parse number in '" + token + "'");
    }
}

}  // namespace

std::string to_text(const PetriNet& net) {
    std::ostringstream out;
    // max_digits10 keeps the round trip bit-exact for doubles.
    out << std::setprecision(std::numeric_limits<double>::max_digits10);
    out << "# mvreju DSPN text format\n";
    const Marking m0 = net.initial_marking();
    for (std::size_t p = 0; p < net.place_count(); ++p) {
        out << "place " << net.place_name({p});
        if (m0[p] > 0) out << " " << m0[p];
        out << "\n";
    }
    for (std::size_t t = 0; t < net.transition_count(); ++t) {
        const TransitionId id{t};
        if (net.has_guard(id))
            throw std::invalid_argument("to_text: transition '" +
                                        net.transition_name(id) +
                                        "' has a guard function (not expressible)");
        switch (net.kind(id)) {
            case TransitionKind::exponential: {
                const auto rate = net.constant_value(id);
                if (!rate)
                    throw std::invalid_argument("to_text: transition '" +
                                                net.transition_name(id) +
                                                "' has a marking-dependent rate");
                out << "exponential " << net.transition_name(id) << " rate=" << *rate
                    << "\n";
                break;
            }
            case TransitionKind::deterministic:
                out << "deterministic " << net.transition_name(id)
                    << " delay=" << net.delay(id) << "\n";
                break;
            case TransitionKind::immediate: {
                const auto weight = net.constant_value(id);
                if (!weight)
                    throw std::invalid_argument("to_text: transition '" +
                                                net.transition_name(id) +
                                                "' has a marking-dependent weight");
                out << "immediate " << net.transition_name(id) << " weight=" << *weight
                    << " priority=" << net.priority(id) << "\n";
                break;
            }
        }
    }
    for (std::size_t t = 0; t < net.transition_count(); ++t) {
        const TransitionId id{t};
        for (const auto& arc : net.input_arcs(id)) {
            out << "arc " << net.place_name(arc.place) << " -> "
                << net.transition_name(id);
            if (arc.multiplicity != 1) out << " " << arc.multiplicity;
            out << "\n";
        }
        for (const auto& arc : net.output_arcs(id)) {
            out << "arc " << net.transition_name(id) << " -> "
                << net.place_name(arc.place);
            if (arc.multiplicity != 1) out << " " << arc.multiplicity;
            out << "\n";
        }
        for (const auto& arc : net.inhibitor_arcs(id)) {
            out << "inhibitor " << net.place_name(arc.place) << " -o "
                << net.transition_name(id);
            if (arc.multiplicity != 1) out << " " << arc.multiplicity;
            out << "\n";
        }
    }
    return out.str();
}

PetriNet from_text(const std::string& text) {
    PetriNet net;
    std::map<std::string, PlaceId> places;
    std::map<std::string, TransitionId> transitions;

    std::istringstream stream(text);
    std::string raw;
    std::size_t line_no = 0;
    while (std::getline(stream, raw)) {
        ++line_no;
        const auto hash = raw.find('#');
        if (hash != std::string::npos) raw.erase(hash);

        std::istringstream line(raw);
        std::vector<std::string> tokens;
        for (std::string token; line >> token;) tokens.push_back(token);
        if (tokens.empty()) continue;
        const std::string& kind = tokens[0];

        try {
        if (kind == "place") {
            if (tokens.size() < 2 || tokens.size() > 3) fail(line_no, "place <name> [tokens]");
            if (places.contains(tokens[1])) fail(line_no, "duplicate place " + tokens[1]);
            int initial = 0;
            if (tokens.size() == 3) {
                try {
                    initial = std::stoi(tokens[2]);
                } catch (const std::exception&) {
                    fail(line_no, "bad token count '" + tokens[2] + "'");
                }
            }
            places[tokens[1]] = net.add_place(tokens[1], initial);
        } else if (kind == "exponential") {
            if (tokens.size() != 3) fail(line_no, "exponential <name> rate=<r>");
            if (transitions.contains(tokens[1]))
                fail(line_no, "duplicate transition " + tokens[1]);
            transitions[tokens[1]] =
                net.add_exponential(tokens[1], parse_kv(tokens[2], "rate", line_no));
        } else if (kind == "deterministic") {
            if (tokens.size() != 3) fail(line_no, "deterministic <name> delay=<d>");
            if (transitions.contains(tokens[1]))
                fail(line_no, "duplicate transition " + tokens[1]);
            transitions[tokens[1]] =
                net.add_deterministic(tokens[1], parse_kv(tokens[2], "delay", line_no));
        } else if (kind == "immediate") {
            if (tokens.size() < 2 || tokens.size() > 4)
                fail(line_no, "immediate <name> [weight=<w>] [priority=<p>]");
            if (transitions.contains(tokens[1]))
                fail(line_no, "duplicate transition " + tokens[1]);
            double weight = 1.0;
            int priority = 1;
            for (std::size_t i = 2; i < tokens.size(); ++i) {
                if (tokens[i].rfind("weight=", 0) == 0)
                    weight = parse_kv(tokens[i], "weight", line_no);
                else if (tokens[i].rfind("priority=", 0) == 0)
                    priority =
                        static_cast<int>(parse_kv(tokens[i], "priority", line_no));
                else
                    fail(line_no, "unknown attribute '" + tokens[i] + "'");
            }
            transitions[tokens[1]] = net.add_immediate(tokens[1], weight, priority);
        } else if (kind == "arc") {
            if (tokens.size() < 4 || tokens.size() > 5 || tokens[2] != "->")
                fail(line_no, "arc <from> -> <to> [multiplicity]");
            int mult = 1;
            if (tokens.size() == 5) {
                try {
                    mult = std::stoi(tokens[4]);
                } catch (const std::exception&) {
                    fail(line_no, "bad multiplicity '" + tokens[4] + "'");
                }
            }
            const bool from_place = places.contains(tokens[1]);
            const bool to_place = places.contains(tokens[3]);
            if (from_place && transitions.contains(tokens[3]))
                net.add_input_arc(transitions[tokens[3]], places[tokens[1]], mult);
            else if (to_place && transitions.contains(tokens[1]))
                net.add_output_arc(transitions[tokens[1]], places[tokens[3]], mult);
            else
                fail(line_no, "arc must connect a known place and transition");
        } else if (kind == "inhibitor") {
            if (tokens.size() < 4 || tokens.size() > 5 || tokens[2] != "-o")
                fail(line_no, "inhibitor <place> -o <transition> [threshold]");
            if (!places.contains(tokens[1]) || !transitions.contains(tokens[3]))
                fail(line_no, "inhibitor must connect a known place and transition");
            int threshold = 1;
            if (tokens.size() == 5) {
                try {
                    threshold = std::stoi(tokens[4]);
                } catch (const std::exception&) {
                    fail(line_no, "bad threshold '" + tokens[4] + "'");
                }
            }
            net.add_inhibitor_arc(transitions[tokens[3]], places[tokens[1]], threshold);
        } else {
            fail(line_no, "unknown declaration '" + kind + "'");
        }
        } catch (const std::invalid_argument& e) {
            // Construction-level validation (e.g. non-positive delay) becomes
            // a line-numbered parse error.
            fail(line_no, e.what());
        }
    }
    return net;
}

void save_net(const PetriNet& net, std::ostream& out) { out << to_text(net); }

PetriNet load_net(std::istream& in) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return from_text(buffer.str());
}

}  // namespace mvreju::dspn
