#include "mvreju/dspn/net.hpp"

#include <algorithm>
#include <stdexcept>

namespace mvreju::dspn {

PlaceId PetriNet::add_place(std::string name, int initial_tokens) {
    if (initial_tokens < 0) throw std::invalid_argument("add_place: negative tokens");
    places_.push_back({std::move(name), initial_tokens});
    return {places_.size() - 1};
}

TransitionId PetriNet::add_immediate(std::string name, double weight, int priority) {
    if (weight <= 0.0) throw std::invalid_argument("add_immediate: weight must be > 0");
    const TransitionId id = add_immediate(
        std::move(name), [weight](const Marking&) { return weight; }, priority);
    transitions_[id.index].constant = weight;
    return id;
}

TransitionId PetriNet::add_immediate(std::string name, MarkingFn weight, int priority) {
    Transition t;
    t.name = std::move(name);
    t.kind = TransitionKind::immediate;
    t.value = std::move(weight);
    t.priority = priority;
    transitions_.push_back(std::move(t));
    return {transitions_.size() - 1};
}

TransitionId PetriNet::add_exponential(std::string name, double rate) {
    if (rate <= 0.0) throw std::invalid_argument("add_exponential: rate must be > 0");
    const TransitionId id =
        add_exponential(std::move(name), [rate](const Marking&) { return rate; });
    transitions_[id.index].constant = rate;
    return id;
}

TransitionId PetriNet::add_exponential(std::string name, MarkingFn rate) {
    Transition t;
    t.name = std::move(name);
    t.kind = TransitionKind::exponential;
    t.value = std::move(rate);
    transitions_.push_back(std::move(t));
    return {transitions_.size() - 1};
}

TransitionId PetriNet::add_deterministic(std::string name, double delay) {
    if (delay <= 0.0) throw std::invalid_argument("add_deterministic: delay must be > 0");
    Transition t;
    t.name = std::move(name);
    t.kind = TransitionKind::deterministic;
    t.delay = delay;
    transitions_.push_back(std::move(t));
    return {transitions_.size() - 1};
}

void PetriNet::add_input_arc(TransitionId t, PlaceId p, int multiplicity) {
    check_transition(t);
    check_place(p);
    if (multiplicity < 1) throw std::invalid_argument("add_input_arc: multiplicity < 1");
    transitions_[t.index].inputs.push_back({p.index, multiplicity});
}

void PetriNet::add_output_arc(TransitionId t, PlaceId p, int multiplicity) {
    check_transition(t);
    check_place(p);
    if (multiplicity < 1) throw std::invalid_argument("add_output_arc: multiplicity < 1");
    transitions_[t.index].outputs.push_back({p.index, multiplicity});
}

void PetriNet::add_inhibitor_arc(TransitionId t, PlaceId p, int threshold) {
    check_transition(t);
    check_place(p);
    if (threshold < 1) throw std::invalid_argument("add_inhibitor_arc: threshold < 1");
    transitions_[t.index].inhibitors.push_back({p.index, threshold});
}

void PetriNet::set_guard(TransitionId t, GuardFn guard) {
    check_transition(t);
    transitions_[t.index].guard = std::move(guard);
}

void PetriNet::set_deterministic_delay(TransitionId t, double delay) {
    check_transition(t);
    if (transitions_[t.index].kind != TransitionKind::deterministic)
        throw std::invalid_argument("set_deterministic_delay: not a deterministic transition");
    if (delay <= 0.0) throw std::invalid_argument("set_deterministic_delay: delay <= 0");
    transitions_[t.index].delay = delay;
}

const std::string& PetriNet::place_name(PlaceId p) const {
    check_place(p);
    return places_[p.index].name;
}

const std::string& PetriNet::transition_name(TransitionId t) const {
    check_transition(t);
    return transitions_[t.index].name;
}

TransitionKind PetriNet::kind(TransitionId t) const {
    check_transition(t);
    return transitions_[t.index].kind;
}

int PetriNet::priority(TransitionId t) const {
    check_transition(t);
    return transitions_[t.index].priority;
}

Marking PetriNet::initial_marking() const {
    Marking m(places_.size());
    for (std::size_t i = 0; i < places_.size(); ++i) m[i] = places_[i].initial;
    return m;
}

bool PetriNet::enabled(TransitionId t, const Marking& marking) const {
    check_transition(t);
    const Transition& tr = transitions_[t.index];
    for (const Arc& arc : tr.inputs)
        if (marking[arc.place] < arc.multiplicity) return false;
    for (const Arc& arc : tr.inhibitors)
        if (marking[arc.place] >= arc.multiplicity) return false;
    if (tr.guard && !tr.guard(marking)) return false;
    // A non-positive marking-dependent rate/weight also disables the
    // transition (e.g. Tc with rate lambda_c * #Pmh when Pmh is empty).
    if (tr.kind != TransitionKind::deterministic && tr.value(marking) <= 0.0) return false;
    return true;
}

Marking PetriNet::fire(TransitionId t, const Marking& marking) const {
    if (!enabled(t, marking)) throw std::logic_error("fire: transition not enabled");
    const Transition& tr = transitions_[t.index];
    Marking next = marking;
    for (const Arc& arc : tr.inputs) next[arc.place] -= arc.multiplicity;
    for (const Arc& arc : tr.outputs) next[arc.place] += arc.multiplicity;
    return next;
}

double PetriNet::rate(TransitionId t, const Marking& marking) const {
    check_transition(t);
    const Transition& tr = transitions_[t.index];
    if (tr.kind != TransitionKind::exponential)
        throw std::invalid_argument("rate: not an exponential transition");
    return enabled(t, marking) ? tr.value(marking) : 0.0;
}

double PetriNet::weight(TransitionId t, const Marking& marking) const {
    check_transition(t);
    const Transition& tr = transitions_[t.index];
    if (tr.kind != TransitionKind::immediate)
        throw std::invalid_argument("weight: not an immediate transition");
    return tr.value(marking);
}

double PetriNet::delay(TransitionId t) const {
    check_transition(t);
    const Transition& tr = transitions_[t.index];
    if (tr.kind != TransitionKind::deterministic)
        throw std::invalid_argument("delay: not a deterministic transition");
    return tr.delay;
}

bool PetriNet::is_vanishing(const Marking& marking) const {
    for (std::size_t i = 0; i < transitions_.size(); ++i)
        if (transitions_[i].kind == TransitionKind::immediate && enabled({i}, marking))
            return true;
    return false;
}

std::vector<TransitionId> PetriNet::enabled_of_kind(const Marking& marking,
                                                    TransitionKind wanted) const {
    std::vector<TransitionId> out;
    for (std::size_t i = 0; i < transitions_.size(); ++i)
        if (transitions_[i].kind == wanted && enabled({i}, marking)) out.push_back({i});
    return out;
}

std::vector<TransitionId> PetriNet::firable_immediates(const Marking& marking) const {
    auto enabled_imm = enabled_of_kind(marking, TransitionKind::immediate);
    if (enabled_imm.empty()) return enabled_imm;
    int top = transitions_[enabled_imm.front().index].priority;
    for (TransitionId t : enabled_imm) top = std::max(top, transitions_[t.index].priority);
    std::erase_if(enabled_imm,
                  [&](TransitionId t) { return transitions_[t.index].priority != top; });
    return enabled_imm;
}

namespace {
std::vector<PetriNet::ArcView> to_views(const auto& arcs) {
    std::vector<PetriNet::ArcView> out;
    out.reserve(arcs.size());
    for (const auto& arc : arcs) out.push_back({{arc.place}, arc.multiplicity});
    return out;
}
}  // namespace

std::optional<double> PetriNet::constant_value(TransitionId t) const {
    check_transition(t);
    return transitions_[t.index].constant;
}

bool PetriNet::has_guard(TransitionId t) const {
    check_transition(t);
    return static_cast<bool>(transitions_[t.index].guard);
}

std::vector<PetriNet::ArcView> PetriNet::input_arcs(TransitionId t) const {
    check_transition(t);
    return to_views(transitions_[t.index].inputs);
}

std::vector<PetriNet::ArcView> PetriNet::output_arcs(TransitionId t) const {
    check_transition(t);
    return to_views(transitions_[t.index].outputs);
}

std::vector<PetriNet::ArcView> PetriNet::inhibitor_arcs(TransitionId t) const {
    check_transition(t);
    return to_views(transitions_[t.index].inhibitors);
}

void PetriNet::check_place(PlaceId p) const {
    if (p.index >= places_.size()) throw std::out_of_range("invalid PlaceId");
}

void PetriNet::check_transition(TransitionId t) const {
    if (t.index >= transitions_.size()) throw std::out_of_range("invalid TransitionId");
}

}  // namespace mvreju::dspn
