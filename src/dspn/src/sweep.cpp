#include "mvreju/dspn/sweep.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "mvreju/obs/metrics.hpp"
#include "mvreju/obs/trace.hpp"
#include "mvreju/util/json.hpp"
#include "mvreju/util/parallel.hpp"
#include "mvreju/util/rng.hpp"

namespace mvreju::dspn {

namespace {

// Bump when the cache file format or the key recipe changes: stale entries
// then miss instead of being misread.
constexpr std::uint64_t kCacheVersion = 1;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix_bytes(std::uint64_t& h, const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
}

void mix_u64(std::uint64_t& h, std::uint64_t v) { mix_bytes(h, &v, sizeof v); }

void mix_double(std::uint64_t& h, double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    mix_u64(h, bits);
}

void mix_string(std::uint64_t& h, const std::string& s) {
    mix_u64(h, s.size());
    mix_bytes(h, s.data(), s.size());
}

void mix_arcs(std::uint64_t& h, const std::vector<PetriNet::ArcView>& arcs) {
    mix_u64(h, arcs.size());
    for (const PetriNet::ArcView& a : arcs) {
        mix_u64(h, a.place.index);
        mix_u64(h, static_cast<std::uint64_t>(a.multiplicity));
    }
}

std::string hex16(std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
    return buf;
}

// %.17g (max_digits10) round-trips every finite double exactly through a
// correctly-rounded strtod, which is what util::Json uses — so cached
// solutions come back bit-identical.
std::string fmt_double(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

void append_array(std::string& out, const std::vector<double>& values) {
    out += '[';
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i != 0) out += ',';
        out += fmt_double(values[i]);
    }
    out += ']';
}

}  // namespace

std::uint64_t structure_hash(const PetriNet& net) {
    std::uint64_t h = kFnvOffset;
    mix_u64(h, net.place_count());
    const Marking initial = net.initial_marking();
    for (std::size_t p = 0; p < net.place_count(); ++p) {
        mix_string(h, net.place_name({p}));
        mix_u64(h, static_cast<std::uint64_t>(initial[p]));
    }
    mix_u64(h, net.transition_count());
    for (std::size_t i = 0; i < net.transition_count(); ++i) {
        const TransitionId t{i};
        mix_string(h, net.transition_name(t));
        mix_u64(h, static_cast<std::uint64_t>(net.kind(t)));
        mix_u64(h, static_cast<std::uint64_t>(net.priority(t)));
        mix_u64(h, net.has_guard(t) ? 1 : 0);
        if (net.kind(t) == TransitionKind::immediate) {
            // Immediate weights shape the vanishing-resolution probabilities
            // that rebind() reuses, so constant weights are structural.
            // Marking-dependent weights hash as a sentinel; the factory must
            // not vary them with the swept parameters.
            const std::optional<double> w = net.constant_value(t);
            if (w.has_value())
                mix_double(h, *w);
            else
                mix_u64(h, 0x776569676874666eULL);  // "weightfn"
        }
        mix_arcs(h, net.input_arcs(t));
        mix_arcs(h, net.output_arcs(t));
        mix_arcs(h, net.inhibitor_arcs(t));
    }
    return h;
}

std::uint64_t numeric_hash(const PetriNet& net) {
    std::uint64_t h = kFnvOffset;
    for (std::size_t i = 0; i < net.transition_count(); ++i) {
        const TransitionId t{i};
        switch (net.kind(t)) {
            case TransitionKind::deterministic:
                mix_double(h, net.delay(t));
                break;
            case TransitionKind::exponential:
            case TransitionKind::immediate: {
                const std::optional<double> c = net.constant_value(t);
                if (c.has_value())
                    mix_double(h, *c);
                else
                    mix_u64(h, 0x726174656673ULL);  // marking-dependent
                break;
            }
        }
    }
    return h;
}

std::uint64_t graph_rates_hash(const ReachabilityGraph& graph) {
    std::uint64_t h = kFnvOffset;
    const std::size_t n = graph.state_count();
    mix_u64(h, n);
    for (const Branch& b : graph.initial_distribution()) {
        mix_u64(h, b.target);
        mix_double(h, b.probability);
    }
    for (std::size_t s = 0; s < n; ++s) {
        const auto& exp_edges = graph.exponential_edges(s);
        mix_u64(h, exp_edges.size());
        for (const ExpEdge& e : exp_edges) {
            mix_u64(h, e.target);
            mix_u64(h, e.via.index);
            mix_double(h, e.rate);
            mix_double(h, e.probability);
        }
        const auto& dets = graph.deterministic_enabled(s);
        mix_u64(h, dets.size());
        for (TransitionId t : dets) {
            mix_u64(h, t.index);
            const auto& branches = graph.deterministic_branches(s, t);
            mix_u64(h, branches.size());
            for (const Branch& b : branches) {
                mix_u64(h, b.target);
                mix_double(h, b.probability);
            }
        }
    }
    return h;
}

SweepEngine::SweepEngine(Factory factory, SweepOptions options)
    : factory_(std::move(factory)), options_(std::move(options)) {
    if (!factory_) throw std::invalid_argument("SweepEngine: null net factory");
}

std::uint64_t SweepEngine::cache_key(std::uint64_t structure, std::uint64_t rates,
                                     const ReachabilityGraph& graph) const {
    std::uint64_t h = kFnvOffset;
    mix_u64(h, kCacheVersion);
    mix_u64(h, structure);
    mix_u64(h, rates);
    // Deterministic delays are the one numeric input graph_rates_hash leaves
    // out (so delay families can group on it); fold them in here.
    const PetriNet& net = graph.net();
    for (std::size_t i = 0; i < net.transition_count(); ++i) {
        const TransitionId t{i};
        if (net.kind(t) == TransitionKind::deterministic) {
            mix_u64(h, i);
            mix_double(h, net.delay(t));
        }
    }
    mix_double(h, options_.stationary.tolerance);
    mix_u64(h, options_.stationary.max_sweeps);
    mix_u64(h, options_.stationary.dense_cutoff);
    return h;
}

std::pair<SweepEngine::Prototype*, bool> SweepEngine::prototype_for(
    std::uint64_t structure, const PetriNet& net) {
    std::lock_guard<std::mutex> lock(prototypes_mutex_);
    auto it = prototypes_.find(structure);
    if (it != prototypes_.end()) return {&it->second, false};
    // Build inside the lock: a structure is explored cold exactly once, so
    // the rebuild count is deterministic (concurrent first sights of the
    // same structure serialise here instead of racing to build).
    Prototype proto;
    proto.net = std::make_unique<PetriNet>(net);
    proto.graph = std::make_unique<ReachabilityGraph>(*proto.net);
    ++stats_.rebuilds;
    static obs::Counter& rebuilds = obs::metrics().counter("dspn.sweep.rebuilds");
    rebuilds.add();
    auto [pos, inserted] = prototypes_.emplace(structure, std::move(proto));
    (void)inserted;
    return {&pos->second, true};
}

const SweepEngine::Anchor* SweepEngine::nearest_anchor(
    const std::vector<double>& params, std::uint64_t structure) const {
    const Anchor* best = nullptr;
    double best_dist = 0.0;
    for (const Anchor& a : anchors_) {
        if (a.structure != structure || a.params.size() != params.size()) continue;
        double dist = 0.0;
        for (std::size_t i = 0; i < params.size(); ++i) {
            const double d = params[i] - a.params[i];
            dist += d * d;
        }
        // Strict < keeps the earliest (lowest grid index) anchor on ties,
        // independent of thread count.
        if (best == nullptr || dist < best_dist) {
            best = &a;
            best_dist = dist;
        }
    }
    return best;
}

bool SweepEngine::disk_load(std::uint64_t key, std::size_t expected_states,
                            Solution& out) const {
    if (options_.cache_dir.empty()) return false;
    const std::string path = options_.cache_dir + "/sweep-" + hex16(key) + ".json";
    std::ifstream in(path);
    if (!in) return false;
    std::ostringstream text;
    text << in.rdbuf();
    try {
        const util::Json doc = util::Json::parse(text.str());
        if (doc.at("version").number() != static_cast<double>(kCacheVersion))
            return false;
        if (doc.at("key").str() != hex16(key)) return false;
        if (doc.at("pi").size() != expected_states) return false;
        out.sweeps = static_cast<std::size_t>(doc.at("sweeps").number());
        out.pi.clear();
        for (const util::Json& v : doc.at("pi").items()) out.pi.push_back(v.number());
        out.nu.clear();
        for (const util::Json& v : doc.at("nu").items()) out.nu.push_back(v.number());
        return !out.pi.empty();
    } catch (const std::exception&) {
        // Truncated or foreign file: treat as a miss and re-solve.
        return false;
    }
}

void SweepEngine::disk_store(std::uint64_t key, const std::vector<double>& params,
                             std::uint64_t structure, const Solution& solution) const {
    if (options_.cache_dir.empty()) return;
    std::error_code ec;
    std::filesystem::create_directories(options_.cache_dir, ec);
    if (ec) return;  // cache is best-effort; the solve already succeeded
    const std::string path = options_.cache_dir + "/sweep-" + hex16(key) + ".json";
    const std::string tmp = path + ".tmp";
    std::string body;
    body += "{\n  \"version\": " + std::to_string(kCacheVersion) + ",\n";
    body += "  \"key\": \"" + hex16(key) + "\",\n";
    body += "  \"structure\": \"" + hex16(structure) + "\",\n";
    body += "  \"params\": ";
    append_array(body, params);
    body += ",\n  \"sweeps\": " + std::to_string(solution.sweeps) + ",\n";
    body += "  \"pi\": ";
    append_array(body, solution.pi);
    body += ",\n  \"nu\": ";
    append_array(body, solution.nu);
    body += "\n}\n";
    {
        std::ofstream outf(tmp, std::ios::trunc);
        if (!outf) return;
        outf << body;
        if (!outf) return;
    }
    // Atomic publish: readers only ever see complete files.
    std::rename(tmp.c_str(), path.c_str());
}

std::vector<SweepPoint> SweepEngine::run(const std::vector<std::vector<double>>& grid) {
    MVREJU_OBS_SPAN(span, "dspn.sweep.run");
    const std::size_t n = grid.size();
    std::vector<SweepPoint> out(n);
    if (n == 0) return out;

    obs::Registry& reg = obs::metrics();
    static obs::Counter& points_ctr = reg.counter("dspn.sweep.points");
    static obs::Counter& cache_hits_ctr = reg.counter("dspn.sweep.cache_hits");
    static obs::Counter& disk_hits_ctr = reg.counter("dspn.sweep.disk_hits");
    static obs::Counter& rebinds_ctr = reg.counter("dspn.sweep.rebinds");
    static obs::Counter& rebuilds_ctr = reg.counter("dspn.sweep.rebuilds");
    static obs::Counter& saved_ctr = reg.counter("dspn.sweep.warmstart_iters_saved");

    const std::size_t threads =
        options_.threads != 0 ? options_.threads : util::hardware_threads();
    const std::size_t chunk =
        options_.chunk != 0 ? options_.chunk : std::max<std::size_t>(8, 2 * threads);

    struct Claim {
        std::uint64_t key = 0;
        std::uint64_t family = 0;       // 0: no delay-family grouping
        std::unique_ptr<PetriNet> net;  // owners only; graph points at it
        std::unique_ptr<ReachabilityGraph> graph;  // owners only
        Solution solution;                         // filled by the solve
        bool owner = false;   // first grid index of its key: runs the solve
        bool queued = false;  // already part of a solve unit
        bool warm_started = false;
    };

    // ---- Claim pass (serial, whole grid) -------------------------------
    // Rebind a prototype copy per point, derive the content-addressed key,
    // resolve memory/disk hits, pick one owner per unique key, and group
    // owners whose graphs differ only in deterministic delays into families.
    // Doing this for the full grid up front (rebinding is microseconds; the
    // solves are the cost) lets a family batch span wavefront chunks.
    std::vector<Claim> claims(n);
    std::map<std::uint64_t, std::size_t> owner_of;  // key -> claim index
    std::map<std::uint64_t, std::vector<std::size_t>> families;  // grid order
    for (std::size_t i = 0; i < n; ++i) {
        SweepPoint& point = out[i];
        Claim& claim = claims[i];
        point.params = grid[i];
        auto net = std::make_unique<PetriNet>(factory_(grid[i]));
        const std::uint64_t structure = structure_hash(*net);
        point.structure = structure;
        auto [proto, created] = prototype_for(structure, *net);
        auto graph = std::make_unique<ReachabilityGraph>(*proto->graph);
        bool family_eligible = true;
        if (graph->rebind(*net)) {
            point.rebuilt = created;
            if (!created) {
                ++stats_.rebinds;
                rebinds_ctr.add();
            }
        } else {
            // Structure-hash collision or a guard that depends on the swept
            // parameters: the prototype is unusable for this net. Build
            // cold, and keep the point out of delay families (its state
            // space is not known to match theirs).
            *graph = ReachabilityGraph(*net);
            point.rebuilt = true;
            family_eligible = false;
            ++stats_.rebuilds;
            rebuilds_ctr.add();
        }
        const std::uint64_t rates = graph_rates_hash(*graph);
        claim.key = cache_key(structure, rates, *graph);
        if (auto it = memory_.find(claim.key); it != memory_.end()) {
            point.pi = it->second.pi;
            point.sweeps = it->second.sweeps;
            point.cache_hit = true;
            continue;
        }
        Solution from_disk;
        if (disk_load(claim.key, graph->state_count(), from_disk)) {
            const Solution& stored =
                memory_.emplace(claim.key, std::move(from_disk)).first->second;
            point.pi = stored.pi;
            point.sweeps = stored.sweeps;
            point.cache_hit = true;
            point.disk_hit = true;
            continue;
        }
        if (owner_of.find(claim.key) != owner_of.end()) continue;  // in-run alias
        claim.owner = true;
        owner_of.emplace(claim.key, i);
        claim.net = std::move(net);
        claim.graph = std::move(graph);
        if (family_eligible && claim.graph->has_deterministic()) {
            std::uint64_t fam = kFnvOffset;
            mix_u64(fam, structure);
            mix_u64(fam, rates);
            claim.family = fam;
            families[fam].push_back(i);
        }
    }

    // ---- Solve pass: deterministic wavefront ---------------------------
    // A serial first point seeds the anchor set, then chunks of `chunk`
    // points. A point may warm-start only from anchors committed by earlier
    // chunks — a set fixed by grid order, so results are bit-identical for
    // every thread count. A chunk's units are its unsolved owners; an owner
    // with a delay family pulls the whole family into one batch (members in
    // later chunks are solved ahead and committed when their chunk arrives).
    std::size_t next = 0;
    bool first_chunk = true;
    while (next < n) {
        const std::size_t begin = next;
        const std::size_t end = std::min(n, begin + (first_chunk ? 1 : chunk));
        first_chunk = false;
        next = end;

        std::vector<std::vector<std::size_t>> units;  // claim indices, grid order
        for (std::size_t i = begin; i < end; ++i) {
            Claim& claim = claims[i];
            if (!claim.owner || claim.queued) continue;
            if (claim.family != 0) {
                std::vector<std::size_t>& members = families.at(claim.family);
                for (std::size_t m : members) claims[m].queued = true;
                if (members.size() >= 2) {
                    ++stats_.family_batches;
                    stats_.family_members += members.size();
                }
                units.push_back(members);
            } else {
                claim.queued = true;
                units.push_back({i});
            }
        }

        // Parallel solves. anchors_ and memory_ are read-only here; units
        // touch disjoint claims.
        util::parallel_for(
            units.size(),
            [&](std::size_t u) {
                const std::vector<std::size_t>& members = units[u];
                std::vector<const ReachabilityGraph*> graphs;
                std::vector<DspnSolveOptions> solve_options(members.size());
                graphs.reserve(members.size());
                for (std::size_t f = 0; f < members.size(); ++f) {
                    Claim& claim = claims[members[f]];
                    graphs.push_back(claim.graph.get());
                    solve_options[f].stationary = options_.stationary;
                    const Anchor* anchor =
                        options_.warm_start
                            ? nearest_anchor(out[members[f]].params,
                                             out[members[f]].structure)
                            : nullptr;
                    if (anchor != nullptr) {
                        solve_options[f].warm_pi = &anchor->solution->pi;
                        if (!anchor->solution->nu.empty())
                            solve_options[f].warm_nu = &anchor->solution->nu;
                        claim.warm_started = true;
                    }
                }
                std::vector<DspnSolution> solved =
                    members.size() == 1
                        ? std::vector<DspnSolution>{dspn_solve(*graphs[0],
                                                               solve_options[0])}
                        : dspn_solve_family(graphs, solve_options);
                for (std::size_t f = 0; f < members.size(); ++f) {
                    Claim& claim = claims[members[f]];
                    claim.solution.pi = std::move(solved[f].pi);
                    claim.solution.nu = std::move(solved[f].nu);
                    claim.solution.sweeps = solved[f].sweeps;
                }
            },
            options_.threads);

        // Serial commit pass, grid order: publish solutions, account stats
        // deterministically, extend the anchor set.
        for (std::size_t i = begin; i < end; ++i) {
            Claim& claim = claims[i];
            SweepPoint& point = out[i];
            if (claim.owner) {
                point.sweeps = claim.solution.sweeps;
                point.warm_started = claim.warm_started;
                ++stats_.solves;
                {
                    std::lock_guard<std::mutex> lock(prototypes_mutex_);
                    Prototype& proto = prototypes_.at(point.structure);
                    if (claim.warm_started) {
                        ++stats_.warm_started;
                        if (proto.cold_sweeps_known &&
                            proto.cold_sweeps > claim.solution.sweeps) {
                            const std::size_t saved =
                                proto.cold_sweeps - claim.solution.sweeps;
                            stats_.warmstart_iters_saved += saved;
                            saved_ctr.add(saved);
                        }
                    } else if (!proto.cold_sweeps_known) {
                        proto.cold_sweeps = claim.solution.sweeps;
                        proto.cold_sweeps_known = true;
                    }
                }
                disk_store(claim.key, point.params, point.structure, claim.solution);
                const Solution& stored =
                    memory_.insert_or_assign(claim.key, std::move(claim.solution))
                        .first->second;
                point.pi = stored.pi;
                claim.graph.reset();  // batches referencing it have completed
                claim.net.reset();
            } else if (!point.cache_hit) {
                // In-run alias: its owner has a smaller grid index, so the
                // solution is committed by now.
                const Solution& stored = memory_.at(claim.key);
                point.pi = stored.pi;
                point.sweeps = stored.sweeps;
                point.cache_hit = true;
            }
            ++stats_.points;
            points_ctr.add();
            if (point.cache_hit) {
                ++stats_.cache_hits;
                cache_hits_ctr.add();
            }
            if (point.disk_hit) {
                ++stats_.disk_hits;
                disk_hits_ctr.add();
            }
            // Every completed point is a warm-start anchor for later chunks.
            anchors_.push_back({point.params, point.structure, &memory_.at(claim.key)});
        }
    }

    span.arg("points", static_cast<double>(stats_.points));
    span.arg("cache_hits", static_cast<double>(stats_.cache_hits));
    span.arg("rebuilds", static_cast<double>(stats_.rebuilds));
    span.arg("family_batches", static_cast<double>(stats_.family_batches));
    return out;
}

SweepPoint SweepEngine::solve(const std::vector<double>& params) {
    return run({params}).front();
}

std::vector<SimulationEstimate> SweepEngine::run_simulated(
    const std::vector<std::vector<double>>& grid, const SweepRewardFn& reward,
    const SimulationOptions& base) {
    MVREJU_OBS_SPAN(span, "dspn.sweep.run_simulated");
    span.arg("points", static_cast<double>(grid.size()));
    std::vector<SimulationEstimate> out(grid.size());
    const util::Rng root(options_.seed);
    util::parallel_for(
        grid.size(),
        [&](std::size_t i) {
            const PetriNet net = factory_(grid[i]);
            SimulationOptions local = base;
            // Substream per grid index: bit-identical at any thread count,
            // and adding a point never perturbs the draws of another.
            util::Rng stream = root.split(i);
            local.seed = stream();
            out[i] = simulate_steady_state_reward(
                net, [&](const Marking& m) { return reward(grid[i], m); }, local);
        },
        options_.threads);
    return out;
}

double SweepEngine::expected_reward(const SweepPoint& point,
                                    const SweepRewardFn& reward) const {
    const std::vector<Marking>* markings = nullptr;
    {
        std::lock_guard<std::mutex> lock(prototypes_mutex_);
        auto it = prototypes_.find(point.structure);
        if (it == prototypes_.end())
            throw std::invalid_argument(
                "SweepEngine::expected_reward: unknown structure (point not solved "
                "by this engine)");
        markings = &it->second.graph->markings();
    }
    if (markings->size() != point.pi.size())
        throw std::invalid_argument(
            "SweepEngine::expected_reward: distribution size mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < point.pi.size(); ++i)
        acc += point.pi[i] * reward(point.params, (*markings)[i]);
    return acc;
}

const std::vector<Marking>& SweepEngine::markings(const std::vector<double>& params) {
    const PetriNet net = factory_(params);
    auto [proto, created] = prototype_for(structure_hash(net), net);
    (void)created;
    return proto->graph->markings();
}

BoundGraph SweepEngine::graph(const std::vector<double>& params) {
    auto net = std::make_unique<PetriNet>(factory_(params));
    auto [proto, created] = prototype_for(structure_hash(*net), *net);
    (void)created;
    ReachabilityGraph graph = *proto->graph;
    if (graph.rebind(*net)) {
        if (!created) {
            ++stats_.rebinds;
            static obs::Counter& rebinds =
                obs::metrics().counter("dspn.sweep.rebinds");
            rebinds.add();
        }
    } else {
        graph = ReachabilityGraph(*net);
        ++stats_.rebuilds;
    }
    return BoundGraph(std::move(net), std::move(graph));
}

}  // namespace mvreju::dspn
