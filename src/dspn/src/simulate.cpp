#include "mvreju/dspn/simulate.hpp"

#include <limits>
#include <map>
#include <stdexcept>
#include <vector>

#include "mvreju/obs/metrics.hpp"
#include "mvreju/obs/trace.hpp"
#include "mvreju/util/parallel.hpp"
#include "mvreju/util/rng.hpp"

namespace mvreju::dspn {

namespace {

/// Batch/ensemble statistics of the Monte-Carlo harnesses. Recorded once
/// per estimate (outside the parallel region) so instrumentation can never
/// perturb the bit-identical-across-thread-counts guarantee.
struct SimTelemetry {
    obs::Counter& estimates;
    obs::Counter& replications;
    obs::Histogram& ci_half_width;
};

SimTelemetry& sim_telemetry() {
    obs::Registry& reg = obs::metrics();
    static SimTelemetry t{
        reg.counter("dspn.sim.estimates"), reg.counter("dspn.sim.replications"),
        reg.histogram("dspn.sim.ci_half_width",
                      obs::HistogramBounds::exponential(1e-6, 10.0, 12))};
    return t;
}

/// Resolve a (possibly vanishing) marking by sampling immediate firings.
Marking sample_tangible(const PetriNet& net, Marking marking, util::Rng& rng) {
    for (int steps = 0; net.is_vanishing(marking); ++steps) {
        if (steps > 10'000)
            throw std::runtime_error("simulate: cycle of immediate transitions");
        const auto firable = net.firable_immediates(marking);
        double total = 0.0;
        for (TransitionId t : firable) total += net.weight(t, marking);
        double pick = rng.uniform() * total;
        TransitionId chosen = firable.back();
        for (TransitionId t : firable) {
            pick -= net.weight(t, marking);
            if (pick <= 0.0) {
                chosen = t;
                break;
            }
        }
        marking = net.fire(chosen, marking);
    }
    return marking;
}

/// One trajectory from the initial marking to time `horizon`; returns the
/// tangible marking occupied at that instant.
Marking simulate_until(const PetriNet& net, double horizon, util::Rng& rng) {
    Marking marking = sample_tangible(net, net.initial_marking(), rng);
    std::map<std::size_t, double> det_clock;
    auto sync_det_clocks = [&](const Marking& tangible) {
        for (std::size_t t = 0; t < net.transition_count(); ++t) {
            const TransitionId id{t};
            if (net.kind(id) != TransitionKind::deterministic) continue;
            const bool is_enabled = net.enabled(id, tangible);
            const bool tracked = det_clock.contains(t);
            if (is_enabled && !tracked) det_clock[t] = net.delay(id);
            if (!is_enabled && tracked) det_clock.erase(t);
        }
    };
    sync_det_clocks(marking);

    double now = 0.0;
    while (now < horizon) {
        const auto exp_enabled = net.enabled_of_kind(marking, TransitionKind::exponential);
        double total_rate = 0.0;
        for (TransitionId t : exp_enabled) total_rate += net.rate(t, marking);
        double exp_dt = std::numeric_limits<double>::infinity();
        if (total_rate > 0.0) exp_dt = rng.exponential(total_rate);

        double det_dt = std::numeric_limits<double>::infinity();
        std::size_t det_winner = 0;
        for (const auto& [t, remaining] : det_clock) {
            if (remaining < det_dt) {
                det_dt = remaining;
                det_winner = t;
            }
        }

        const double dt = std::min(exp_dt, det_dt);
        if (!std::isfinite(dt))
            throw std::runtime_error("simulate: dead marking (no enabled transitions)");
        if (now + dt >= horizon) break;  // marking persists through `horizon`
        now += dt;
        for (auto& [t, remaining] : det_clock) remaining -= dt;

        TransitionId fired{};
        if (det_dt <= exp_dt) {
            fired = TransitionId{det_winner};
            det_clock.erase(det_winner);
        } else {
            double pick = rng.uniform() * total_rate;
            fired = exp_enabled.back();
            for (TransitionId t : exp_enabled) {
                pick -= net.rate(t, marking);
                if (pick <= 0.0) {
                    fired = t;
                    break;
                }
            }
        }
        marking = sample_tangible(net, net.fire(fired, marking), rng);
        sync_det_clocks(marking);
    }
    return marking;
}

/// One first-passage trajectory, event by event, checking the predicate
/// after every tangible transition. Returns the hitting time, or max_time
/// with hit == false when the run is censored.
struct FirstPassageSample {
    double time = 0.0;
    bool hit = false;
};

FirstPassageSample first_passage_trajectory(
    const PetriNet& net, const std::function<bool(const Marking&)>& predicate,
    double max_time, util::Rng& rng) {
    Marking marking = sample_tangible(net, net.initial_marking(), rng);
    std::map<std::size_t, double> det_clock;
    auto sync = [&](const Marking& tangible) {
        for (std::size_t t = 0; t < net.transition_count(); ++t) {
            const TransitionId id{t};
            if (net.kind(id) != TransitionKind::deterministic) continue;
            const bool is_enabled = net.enabled(id, tangible);
            const bool tracked = det_clock.contains(t);
            if (is_enabled && !tracked) det_clock[t] = net.delay(id);
            if (!is_enabled && tracked) det_clock.erase(t);
        }
    };
    sync(marking);

    double now = 0.0;
    bool hit = predicate(marking);
    while (!hit && now < max_time) {
        const auto exp_enabled = net.enabled_of_kind(marking, TransitionKind::exponential);
        double total_rate = 0.0;
        for (TransitionId t : exp_enabled) total_rate += net.rate(t, marking);
        double exp_dt = std::numeric_limits<double>::infinity();
        if (total_rate > 0.0) exp_dt = rng.exponential(total_rate);
        double det_dt = std::numeric_limits<double>::infinity();
        std::size_t det_winner = 0;
        for (const auto& [t, remaining] : det_clock) {
            if (remaining < det_dt) {
                det_dt = remaining;
                det_winner = t;
            }
        }
        const double dt = std::min(exp_dt, det_dt);
        if (!std::isfinite(dt))
            throw std::runtime_error("simulate: dead marking (no enabled transitions)");
        now += dt;
        if (now >= max_time) break;
        for (auto& [t, remaining] : det_clock) remaining -= dt;
        TransitionId fired{};
        if (det_dt <= exp_dt) {
            fired = TransitionId{det_winner};
            det_clock.erase(det_winner);
        } else {
            double pick = rng.uniform() * total_rate;
            fired = exp_enabled.back();
            for (TransitionId t : exp_enabled) {
                pick -= net.rate(t, marking);
                if (pick <= 0.0) {
                    fired = t;
                    break;
                }
            }
        }
        marking = sample_tangible(net, net.fire(fired, marking), rng);
        sync(marking);
        hit = predicate(marking);
    }
    return {hit ? now : max_time, hit};
}

}  // namespace

FirstPassageEstimate simulate_mean_time_to(
    const PetriNet& net, const std::function<bool(const Marking&)>& predicate,
    double max_time, std::size_t replications, std::uint64_t seed,
    std::size_t num_threads) {
    if (max_time <= 0.0)
        throw std::invalid_argument("simulate_mean_time_to: non-positive max_time");
    if (replications < 2)
        throw std::invalid_argument("simulate_mean_time_to: need >= 2 replications");
    MVREJU_OBS_SPAN(span, "dspn.simulate.first_passage");
    span.arg("replications", static_cast<double>(replications));

    // Replication r draws only from substream r + 1 and writes only slot r,
    // so the fan-out is bit-identical for every thread count.
    const util::Rng root(seed);
    std::vector<double> samples(replications, 0.0);
    std::vector<char> hits(replications, 0);
    util::parallel_for(
        replications,
        [&](std::size_t r) {
            util::Rng rng = root.split(r + 1);
            const FirstPassageSample s =
                first_passage_trajectory(net, predicate, max_time, rng);
            samples[r] = s.time;
            hits[r] = s.hit ? 1 : 0;
        },
        num_threads);

    FirstPassageEstimate est;
    for (char h : hits)
        if (!h) ++est.censored;
    est.ci = num::mean_ci95(samples);
    est.mean = est.ci.mean;

    SimTelemetry& t = sim_telemetry();
    t.estimates.add();
    t.replications.add(replications);
    t.ci_half_width.record(est.ci.half_width());
    static obs::Counter& censored =
        obs::metrics().counter("dspn.sim.first_passage_censored");
    censored.add(est.censored);
    span.arg("censored", static_cast<double>(est.censored));
    span.arg("ci_half_width", est.ci.half_width());
    return est;
}

SimulationEstimate simulate_transient_reward(const PetriNet& net, const RewardFn& reward,
                                             double t, std::size_t replications,
                                             std::uint64_t seed, std::size_t num_threads) {
    if (t < 0.0) throw std::invalid_argument("simulate_transient_reward: negative time");
    if (replications < 2)
        throw std::invalid_argument("simulate_transient_reward: need >= 2 replications");
    MVREJU_OBS_SPAN(span, "dspn.simulate.transient");
    span.arg("replications", static_cast<double>(replications));
    span.arg("t", t);
    const util::Rng root(seed);
    std::vector<double> samples(replications, 0.0);
    util::parallel_for(
        replications,
        [&](std::size_t r) {
            util::Rng rng = root.split(r + 1);
            samples[r] = reward(simulate_until(net, t, rng));
        },
        num_threads);
    SimulationEstimate est;
    est.ci = num::mean_ci95(samples);
    est.mean = est.ci.mean;

    SimTelemetry& tel = sim_telemetry();
    tel.estimates.add();
    tel.replications.add(replications);
    tel.ci_half_width.record(est.ci.half_width());
    span.arg("ci_half_width", est.ci.half_width());
    return est;
}

SimulationEstimate simulate_steady_state_reward(const PetriNet& net, const RewardFn& reward,
                                                const SimulationOptions& options) {
    if (options.horizon <= options.warmup)
        throw std::invalid_argument("simulate: horizon must exceed warmup");
    if (options.batches < 2) throw std::invalid_argument("simulate: need >= 2 batches");
    MVREJU_OBS_SPAN(span, "dspn.simulate.steady_state");
    span.arg("batches", static_cast<double>(options.batches));
    span.arg("horizon", options.horizon);

    util::Rng rng(options.seed);
    Marking marking = sample_tangible(net, net.initial_marking(), rng);

    // Remaining-time clocks of currently enabled deterministic transitions.
    std::map<std::size_t, double> det_clock;
    auto sync_det_clocks = [&](const Marking& tangible) {
        for (std::size_t t = 0; t < net.transition_count(); ++t) {
            const TransitionId id{t};
            if (net.kind(id) != TransitionKind::deterministic) continue;
            const bool is_enabled = net.enabled(id, tangible);
            const bool tracked = det_clock.contains(t);
            if (is_enabled && !tracked) det_clock[t] = net.delay(id);
            if (!is_enabled && tracked) det_clock.erase(t);
        }
    };
    sync_det_clocks(marking);

    const double batch_length =
        (options.horizon - options.warmup) / static_cast<double>(options.batches);
    std::vector<double> batch_means;
    batch_means.reserve(options.batches);

    double now = 0.0;
    double batch_acc = 0.0;
    double batch_end = options.warmup + batch_length;
    bool warm = false;

    auto accumulate = [&](double from, double to, double r) {
        // Credit reward r over [from, to], split across warmup/batch borders.
        if (to <= options.warmup) return;
        from = std::max(from, options.warmup);
        while (from < to) {
            const double seg_end = std::min(to, batch_end);
            batch_acc += r * (seg_end - from);
            from = seg_end;
            if (from >= batch_end && batch_means.size() < options.batches) {
                batch_means.push_back(batch_acc / batch_length);
                batch_acc = 0.0;
                batch_end += batch_length;
            }
        }
    };

    while (now < options.horizon && batch_means.size() < options.batches) {
        if (!warm && now >= options.warmup) warm = true;

        // Competing exponential transitions: total-rate race.
        const auto exp_enabled = net.enabled_of_kind(marking, TransitionKind::exponential);
        double total_rate = 0.0;
        for (TransitionId t : exp_enabled) total_rate += net.rate(t, marking);

        double exp_dt = std::numeric_limits<double>::infinity();
        if (total_rate > 0.0) exp_dt = rng.exponential(total_rate);

        // Earliest deterministic firing.
        double det_dt = std::numeric_limits<double>::infinity();
        std::size_t det_winner = 0;
        for (const auto& [t, remaining] : det_clock) {
            if (remaining < det_dt) {
                det_dt = remaining;
                det_winner = t;
            }
        }

        const double dt = std::min(exp_dt, det_dt);
        if (!std::isfinite(dt))
            throw std::runtime_error("simulate: dead marking (no enabled transitions)");

        const double reward_here = reward(marking);
        accumulate(now, std::min(now + dt, options.horizon), reward_here);
        now += dt;
        if (now >= options.horizon) break;

        // Age deterministic clocks by the elapsed time.
        for (auto& [t, remaining] : det_clock) remaining -= dt;

        TransitionId fired{};
        if (det_dt <= exp_dt) {
            fired = TransitionId{det_winner};
            det_clock.erase(det_winner);
        } else {
            double pick = rng.uniform() * total_rate;
            fired = exp_enabled.back();
            for (TransitionId t : exp_enabled) {
                pick -= net.rate(t, marking);
                if (pick <= 0.0) {
                    fired = t;
                    break;
                }
            }
        }

        marking = sample_tangible(net, net.fire(fired, marking), rng);
        sync_det_clocks(marking);
    }

    // Floating-point segment splitting can leave the final batch unclosed.
    if (batch_means.size() < options.batches) batch_means.push_back(batch_acc / batch_length);

    SimulationEstimate est;
    est.ci = num::mean_ci95(batch_means);
    est.mean = est.ci.mean;

    SimTelemetry& tel = sim_telemetry();
    tel.estimates.add();
    tel.replications.add(batch_means.size());
    tel.ci_half_width.record(est.ci.half_width());
    static obs::Counter& batches = obs::metrics().counter("dspn.sim.batches");
    batches.add(batch_means.size());
    span.arg("ci_half_width", est.ci.half_width());
    return est;
}

}  // namespace mvreju::dspn
