#include "mvreju/dspn/dot.hpp"

#include <sstream>

namespace mvreju::dspn {

std::string to_dot(const PetriNet& net) {
    std::ostringstream out;
    out << "digraph dspn {\n  rankdir=LR;\n";
    const Marking m0 = net.initial_marking();
    for (std::size_t p = 0; p < net.place_count(); ++p) {
        out << "  p" << p << " [shape=circle,label=\"" << net.place_name({p});
        if (m0[p] > 0) out << "\\n(" << m0[p] << ")";
        out << "\"];\n";
    }
    for (std::size_t t = 0; t < net.transition_count(); ++t) {
        const TransitionId id{t};
        const char* style = nullptr;
        switch (net.kind(id)) {
            case TransitionKind::immediate:
                style = "shape=box,height=0.1,style=filled,fillcolor=black,fontcolor=white";
                break;
            case TransitionKind::exponential:
                style = "shape=box,style=\"\"";
                break;
            case TransitionKind::deterministic:
                style = "shape=box,style=filled,fillcolor=gray30,fontcolor=white";
                break;
        }
        out << "  t" << t << " [" << style << ",label=\"" << net.transition_name(id)
            << "\"];\n";
    }
    auto mult_label = [](int mult) {
        return mult == 1 ? std::string{} : " [label=\"" + std::to_string(mult) + "\"]";
    };
    for (std::size_t t = 0; t < net.transition_count(); ++t) {
        const TransitionId id{t};
        for (const auto& arc : net.input_arcs(id))
            out << "  p" << arc.place.index << " -> t" << t << mult_label(arc.multiplicity)
                << ";\n";
        for (const auto& arc : net.output_arcs(id))
            out << "  t" << t << " -> p" << arc.place.index << mult_label(arc.multiplicity)
                << ";\n";
        for (const auto& arc : net.inhibitor_arcs(id))
            out << "  p" << arc.place.index << " -> t" << t
                << " [arrowhead=odot,style=dotted];\n";
    }
    out << "}\n";
    return out.str();
}

std::string to_dot(const ReachabilityGraph& graph) {
    std::ostringstream out;
    out << "digraph tangible {\n";
    for (std::size_t s = 0; s < graph.state_count(); ++s) {
        out << "  s" << s << " [shape=ellipse,label=\"";
        const Marking& m = graph.marking(s);
        for (std::size_t p = 0; p < m.size(); ++p) out << (p ? "," : "") << m[p];
        out << "\"];\n";
    }
    for (std::size_t s = 0; s < graph.state_count(); ++s) {
        for (const ExpEdge& e : graph.exponential_edges(s))
            out << "  s" << s << " -> s" << e.target << " [label=\""
                << graph.net().transition_name(e.via) << "\"];\n";
        for (TransitionId t : graph.deterministic_enabled(s))
            for (const Branch& b : graph.deterministic_branches(s, t))
                out << "  s" << s << " -> s" << b.target << " [style=dashed,label=\""
                    << graph.net().transition_name(t) << "\"];\n";
    }
    out << "}\n";
    return out.str();
}

}  // namespace mvreju::dspn
