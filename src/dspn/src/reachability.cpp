#include "mvreju/dspn/reachability.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "mvreju/obs/metrics.hpp"
#include "mvreju/obs/trace.hpp"

namespace mvreju::dspn {

ReachabilityGraph::ReachabilityGraph(const PetriNet& net, std::size_t max_states)
    : net_(&net), max_states_(max_states) {
    MVREJU_OBS_SPAN(span, "dspn.reachability");
    std::vector<Marking> path;
    initial_ = resolve(net_->initial_marking(), path);

    // Exhaustive exploration. intern() appends new states to markings_, so a
    // simple index-based sweep acts as the BFS worklist.
    for (std::size_t state = 0; state < markings_.size(); ++state) {
        const Marking current = markings_[state];  // copy: vectors may reallocate

        for (TransitionId t : net_->enabled_of_kind(current, TransitionKind::exponential)) {
            const double rate = net_->rate(t, current);
            path.clear();
            for (const Branch& b : resolve(net_->fire(t, current), path)) {
                exp_edges_[state].push_back({b.target, rate * b.probability, b.probability, t});
            }
        }

        for (TransitionId t :
             net_->enabled_of_kind(current, TransitionKind::deterministic)) {
            has_deterministic_ = true;
            det_enabled_[state].push_back(t);
            path.clear();
            det_branches_[{state, t.index}] = resolve(net_->fire(t, current), path);
        }
    }

    std::size_t exp_edge_count = 0;
    for (const auto& edges : exp_edges_) exp_edge_count += edges.size();
    span.arg("states", static_cast<double>(markings_.size()));
    span.arg("exp_edges", static_cast<double>(exp_edge_count));
    obs::Registry& reg = obs::metrics();
    static obs::Counter& builds = reg.counter("dspn.reachability.builds");
    static obs::Histogram& states_hist = reg.histogram(
        "dspn.reachability.states", obs::HistogramBounds::exponential(1.0, 4.0, 12));
    builds.add();
    states_hist.record(static_cast<double>(markings_.size()));
}

bool ReachabilityGraph::rebind(const PetriNet& net) {
    // Cheap structural re-validation. The full enabling structure (arcs,
    // guards, priorities) is vouched for by the caller's structure hash;
    // here we catch the mistakes that are detectable without re-exploring.
    if (net.place_count() != net_->place_count() ||
        net.transition_count() != net_->transition_count())
        return false;
    for (std::size_t t = 0; t < net.transition_count(); ++t)
        if (net.kind({t}) != net_->kind({t})) return false;
    if (net.initial_marking() != net_->initial_marking()) return false;

    // Recompute every exponential edge's rate in the new net before touching
    // the graph: a rate that dropped to zero (or a guard that now rejects the
    // marking) means the enabling structure actually changed and the edge
    // list is stale — report failure with the graph intact.
    std::vector<std::vector<double>> new_rates(exp_edges_.size());
    for (std::size_t s = 0; s < exp_edges_.size(); ++s) {
        new_rates[s].reserve(exp_edges_[s].size());
        for (const ExpEdge& e : exp_edges_[s]) {
            const double rate = net.rate(e.via, markings_[s]);
            if (rate <= 0.0) return false;
            new_rates[s].push_back(rate);
        }
    }
    for (std::size_t s = 0; s < exp_edges_.size(); ++s) {
        for (std::size_t k = 0; k < exp_edges_[s].size(); ++k) {
            ExpEdge& e = exp_edges_[s][k];
            // Same product as a cold build: rate(t, marking) * resolution
            // probability — re-rated graphs stay bit-identical to rebuilt ones.
            e.rate = new_rates[s][k] * e.probability;
        }
    }
    net_ = &net;
    static obs::Counter& rebinds = obs::metrics().counter("dspn.reachability.rebinds");
    rebinds.add();
    return true;
}

const Marking& ReachabilityGraph::marking(std::size_t state) const {
    return markings_.at(state);
}

std::optional<std::size_t> ReachabilityGraph::find(const Marking& marking) const {
    auto it = index_.find(marking);
    if (it == index_.end()) return std::nullopt;
    return it->second;
}

const std::vector<ExpEdge>& ReachabilityGraph::exponential_edges(std::size_t state) const {
    return exp_edges_.at(state);
}

const std::vector<TransitionId>& ReachabilityGraph::deterministic_enabled(
    std::size_t state) const {
    return det_enabled_.at(state);
}

const std::vector<Branch>& ReachabilityGraph::deterministic_branches(
    std::size_t state, TransitionId t) const {
    auto it = det_branches_.find({state, t.index});
    if (it == det_branches_.end())
        throw std::invalid_argument("deterministic_branches: transition not enabled here");
    return it->second;
}

std::size_t ReachabilityGraph::intern(const Marking& marking) {
    auto [it, inserted] = index_.try_emplace(marking, markings_.size());
    if (inserted) {
        if (markings_.size() >= max_states_)
            throw std::runtime_error("ReachabilityGraph: state-space limit exceeded");
        markings_.push_back(marking);
        exp_edges_.emplace_back();
        det_enabled_.emplace_back();
    }
    return it->second;
}

std::vector<Branch> ReachabilityGraph::resolve(const Marking& marking,
                                               std::vector<Marking>& path) {
    if (!net_->is_vanishing(marking)) return {{intern(marking), 1.0}};

    if (std::find(path.begin(), path.end(), marking) != path.end())
        throw std::runtime_error("ReachabilityGraph: cycle of immediate transitions");
    path.push_back(marking);

    const auto firable = net_->firable_immediates(marking);
    double total_weight = 0.0;
    for (TransitionId t : firable) total_weight += net_->weight(t, marking);
    if (total_weight <= 0.0)
        throw std::runtime_error("ReachabilityGraph: non-positive immediate weights");

    // Accumulate branches by target to keep distributions compact.
    std::map<std::size_t, double> acc;
    for (TransitionId t : firable) {
        const double prob = net_->weight(t, marking) / total_weight;
        for (const Branch& b : resolve(net_->fire(t, marking), path))
            acc[b.target] += prob * b.probability;
    }

    path.pop_back();

    std::vector<Branch> out;
    out.reserve(acc.size());
    for (const auto& [target, prob] : acc) out.push_back({target, prob});
    return out;
}

}  // namespace mvreju::dspn
