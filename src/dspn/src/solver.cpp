#include "mvreju/dspn/solver.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "mvreju/num/sparse.hpp"
#include "mvreju/num/sparse_markov.hpp"
#include "mvreju/obs/metrics.hpp"
#include "mvreju/obs/trace.hpp"
#include "mvreju/util/parallel.hpp"

namespace mvreju::dspn {

namespace {

using num::SparseMatrix;
using num::Triplet;

/// Generator of the tangible CTMC (exponential edges only), assembled
/// directly in sparse form — tangible graphs have O(transitions) edges per
/// state, so the generator is sparse by construction.
SparseMatrix build_generator(const ReachabilityGraph& graph) {
    const std::size_t n = graph.state_count();
    std::vector<Triplet> triplets;
    for (std::size_t i = 0; i < n; ++i) {
        for (const ExpEdge& edge : graph.exponential_edges(i)) {
            triplets.push_back({i, edge.target, edge.rate});
            triplets.push_back({i, i, -edge.rate});
        }
    }
    return SparseMatrix::from_triplets(n, n, std::move(triplets));
}

/// Check both-way reachability of every state from state 0 in the combined
/// (exponential + deterministic) tangible graph. Steady-state analysis of a
/// reducible model is a modeling error we want to surface early.
void check_irreducible(const ReachabilityGraph& graph) {
    const std::size_t n = graph.state_count();
    std::vector<std::vector<std::size_t>> fwd(n);
    std::vector<std::vector<std::size_t>> bwd(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (const ExpEdge& e : graph.exponential_edges(i)) {
            fwd[i].push_back(e.target);
            bwd[e.target].push_back(i);
        }
        for (TransitionId t : graph.deterministic_enabled(i)) {
            for (const Branch& b : graph.deterministic_branches(i, t)) {
                fwd[i].push_back(b.target);
                bwd[b.target].push_back(i);
            }
        }
    }
    auto reach_all = [n](const std::vector<std::vector<std::size_t>>& adj) {
        std::vector<char> seen(n, 0);
        std::deque<std::size_t> queue{0};
        seen[0] = 1;
        std::size_t count = 1;
        while (!queue.empty()) {
            const std::size_t s = queue.front();
            queue.pop_front();
            for (std::size_t t : adj[s]) {
                if (!seen[t]) {
                    seen[t] = 1;
                    ++count;
                    queue.push_back(t);
                }
            }
        }
        return count == n;
    };
    if (!reach_all(fwd) || !reach_all(bwd))
        throw std::runtime_error("steady state: tangible graph is not irreducible");
}

/// One tangible state's contribution to the embedded Markov chain and the
/// conversion matrix: EMC row i (regeneration-target probabilities) and
/// conversion row i (expected time per tangible marking during the period).
struct RegenerationRow {
    std::vector<Triplet> emc;
    std::vector<Triplet> conv;
};

/// Regeneration row of a purely exponential tangible state: regeneration at
/// the first firing.
RegenerationRow exponential_row(const ReachabilityGraph& graph, std::size_t i) {
    RegenerationRow row;
    double total_rate = 0.0;
    for (const ExpEdge& e : graph.exponential_edges(i)) total_rate += e.rate;
    if (total_rate <= 0.0)
        throw std::runtime_error("dspn_steady_state: dead tangible marking");
    for (const ExpEdge& e : graph.exponential_edges(i))
        row.emc.push_back({i, e.target, e.rate / total_rate});
    row.conv.push_back({i, i, 1.0 / total_rate});
    return row;
}

/// Subordinated CTMC of the deterministic enabling period started in state
/// i: the transient block (det stays enabled), the absorbing regeneration
/// targets (det disabled on entry), and the local generator. Depends only on
/// the graph's structure and exponential rates — not on the delay — so a
/// delay sweep can reuse it across grid points.
struct SubordinatedPeriod {
    std::vector<std::size_t> sub;        // transient states (det enabled)
    std::vector<std::size_t> absorbing;  // det disabled on entry
    SparseMatrix q;
    std::size_t start = 0;  // local index of the period's start state
};

SubordinatedPeriod subordinated_period(const ReachabilityGraph& graph, std::size_t i,
                                       TransitionId det) {
    SubordinatedPeriod period;
    const std::size_t n = graph.state_count();

    // Subordinated set: tangible states reachable from i through exponential
    // firings while `det` stays enabled. States where det is disabled (or a
    // different deterministic transition shows up) become absorbing
    // regeneration targets.
    std::vector<std::size_t>& sub = period.sub;
    std::vector<std::size_t>& absorbing = period.absorbing;
    std::vector<int> local(n, -1);  // global -> local index, -1 unknown
    auto classify = [&](std::size_t s) {
        if (local[s] != -1) return;
        const auto& s_dets = graph.deterministic_enabled(s);
        const bool has_det = std::find(s_dets.begin(), s_dets.end(), det) != s_dets.end();
        if (has_det && s_dets.size() > 1)
            throw std::runtime_error(
                "dspn_steady_state: concurrent deterministic transitions enabled");
        if (has_det) {
            // det keeps its clock: part of the subordinated CTMC.
            local[s] = static_cast<int>(sub.size());
            sub.push_back(s);
        } else {
            // det was disabled by the firing that entered s: regeneration
            // point (any other deterministic transition starts fresh).
            local[s] = -2;  // absorbing; index assigned after the sweep
            absorbing.push_back(s);
        }
    };

    classify(i);
    if (local[i] < 0)
        throw std::logic_error("dspn_steady_state: seed state misclassified");
    for (std::size_t k = 0; k < sub.size(); ++k) {
        for (const ExpEdge& e : graph.exponential_edges(sub[k])) classify(e.target);
    }
    // Assign absorbing local indices after the transient block.
    for (std::size_t a = 0; a < absorbing.size(); ++a)
        local[absorbing[a]] = static_cast<int>(sub.size() + a);

    const std::size_t m = sub.size() + absorbing.size();
    std::vector<Triplet> q_triplets;
    for (std::size_t k = 0; k < sub.size(); ++k) {
        for (const ExpEdge& e : graph.exponential_edges(sub[k])) {
            const auto to = static_cast<std::size_t>(local[e.target]);
            q_triplets.push_back({k, to, e.rate});
            q_triplets.push_back({k, k, -e.rate});
        }
    }
    // Absorbing rows stay zero.
    period.q = SparseMatrix::from_triplets(m, m, std::move(q_triplets));
    period.start = static_cast<std::size_t>(local[i]);
    return period;
}

/// Convert the uniformization result of one regeneration period into its
/// EMC/conversion row contributions.
RegenerationRow assemble_regeneration_row(const ReachabilityGraph& graph, std::size_t i,
                                          TransitionId det,
                                          const SubordinatedPeriod& period,
                                          const num::TransientRow& tr) {
    RegenerationRow row;
    const auto& sub = period.sub;
    const auto& absorbing = period.absorbing;
    // Survived to tau in subordinated state s: det fires there.
    for (std::size_t k = 0; k < sub.size(); ++k) {
        const double p_here = tr.omega[k];
        if (p_here <= 0.0) continue;
        for (const Branch& b : graph.deterministic_branches(sub[k], det))
            row.emc.push_back({i, b.target, p_here * b.probability});
    }
    // Absorbed before tau: period ended at the disabling firing.
    for (std::size_t a = 0; a < absorbing.size(); ++a) {
        const double p_abs = tr.omega[sub.size() + a];
        if (p_abs > 0.0) row.emc.push_back({i, absorbing[a], p_abs});
    }
    // Time is accumulated only in transient (det-enabled) markings; the
    // period ends on absorption.
    for (std::size_t k = 0; k < sub.size(); ++k) {
        if (tr.psi[k] > 0.0) row.conv.push_back({i, sub[k], tr.psi[k]});
    }
    return row;
}

const TransitionId* single_deterministic(const ReachabilityGraph& graph, std::size_t i) {
    const auto& dets = graph.deterministic_enabled(i);
    if (dets.size() > 1)
        throw std::runtime_error(
            "dspn_steady_state: more than one deterministic transition enabled");
    return dets.empty() ? nullptr : &dets.front();
}

RegenerationRow analyze_regeneration_period(const ReachabilityGraph& graph,
                                            std::size_t i) {
    const TransitionId* det = single_deterministic(graph, i);
    if (det == nullptr) return exponential_row(graph, i);

    // Deterministic enabling period: subordinated CTMC analysis. Only the
    // start state's omega/psi rows are ever read, so iterate a single row
    // vector through the uniformized chain instead of computing the full
    // e^{Q tau} matrix (O(nnz) per Poisson term, not O(n^3)).
    const SubordinatedPeriod period = subordinated_period(graph, i, *det);
    const num::TransientRow tr =
        num::transient_row(period.q, period.start, graph.net().delay(*det));
    return assemble_regeneration_row(graph, i, *det, period, tr);
}

/// Per-member regeneration rows of state i for a family of graphs that share
/// structure and exponential rates and differ only in deterministic delays:
/// one subordinated-CTMC power pass (num::transient_rows) serves every
/// member. Bit-identical to analyze_regeneration_period on each member.
std::vector<RegenerationRow> analyze_regeneration_period_family(
    const std::vector<const ReachabilityGraph*>& graphs, std::size_t i) {
    const ReachabilityGraph& g0 = *graphs.front();
    const TransitionId* det = single_deterministic(g0, i);
    if (det == nullptr) {
        // Exponential rates are shared, so every member gets the same row.
        std::vector<RegenerationRow> rows(graphs.size(), exponential_row(g0, i));
        return rows;
    }
    const SubordinatedPeriod period = subordinated_period(g0, i, *det);
    std::vector<double> taus;
    taus.reserve(graphs.size());
    for (const ReachabilityGraph* g : graphs) taus.push_back(g->net().delay(*det));
    const std::vector<num::TransientRow> trs =
        num::transient_rows(period.q, period.start, taus);
    std::vector<RegenerationRow> rows;
    rows.reserve(graphs.size());
    for (std::size_t f = 0; f < graphs.size(); ++f)
        rows.push_back(assemble_regeneration_row(g0, i, *det, period, trs[f]));
    return rows;
}

/// Purely exponential path of dspn_solve: assemble the tangible generator
/// and solve the CTMC stationary system, optionally warm-started.
DspnSolution solve_spn(const ReachabilityGraph& graph, const DspnSolveOptions& options) {
    DspnSolution out;
    if (graph.state_count() == 0) return out;
    if (graph.state_count() == 1) {
        out.pi = {1.0};
        return out;
    }
    MVREJU_OBS_SPAN(span, "dspn.steady_state");
    check_irreducible(graph);
    const num::SparseMatrix q = build_generator(graph);
    span.arg("states", static_cast<double>(graph.state_count()));
    span.arg("nnz", static_cast<double>(q.nnz()));
    static obs::Counter& solves = obs::metrics().counter("dspn.steady_state.solves");
    solves.add();
    num::StationaryOptions stat = options.stationary;
    stat.initial = options.warm_pi;
    stat.sweeps_out = &out.sweeps;
    out.pi = num::ctmc_steady_state(q, stat);
    return out;
}

/// EMC assembly, embedded stationary solve, and conversion back to time
/// averages — the tail shared by the single and the family MRGP paths, so
/// both produce bit-identical results from equal rows.
DspnSolution solve_mrgp_from_rows(std::size_t n, const std::vector<RegenerationRow>& rows,
                                  const DspnSolveOptions& options) {
    DspnSolution out;

    // Regeneration fan-out: how many EMC targets each regeneration period
    // reaches — the width of the MRGP coupling and a direct driver of the
    // embedded-chain solve cost.
    {
        obs::Registry& reg = obs::metrics();
        static obs::Counter& solves = reg.counter("dspn.mrgp.solves");
        static obs::Counter& periods = reg.counter("dspn.mrgp.regeneration_periods");
        static obs::Histogram& fanout = reg.histogram(
            "dspn.mrgp.regeneration_fanout", obs::HistogramBounds::exponential(1.0, 2.0, 12));
        solves.add();
        periods.add(n);
        for (const RegenerationRow& row : rows)
            fanout.record(static_cast<double>(row.emc.size()));
    }

    std::vector<Triplet> emc_triplets;
    std::vector<Triplet> conv_triplets;
    for (const RegenerationRow& row : rows) {
        emc_triplets.insert(emc_triplets.end(), row.emc.begin(), row.emc.end());
        conv_triplets.insert(conv_triplets.end(), row.conv.begin(), row.conv.end());
    }
    const SparseMatrix emc = SparseMatrix::from_triplets(n, n, std::move(emc_triplets));
    const SparseMatrix conv = SparseMatrix::from_triplets(n, n, std::move(conv_triplets));

    num::StationaryOptions stat = options.stationary;
    stat.initial = options.warm_nu;
    stat.sweeps_out = &out.sweeps;
    out.nu = num::dtmc_stationary(emc, stat);

    std::vector<double> pi(n, 0.0);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        for (const SparseMatrix::Entry& e : conv.row(i)) pi[e.col] += out.nu[i] * e.value;
    }
    for (double v : pi) total += v;
    if (total <= 0.0) throw std::runtime_error("dspn_steady_state: zero total time");
    for (double& v : pi) v /= total;
    out.pi = std::move(pi);
    return out;
}

/// MRGP path of dspn_solve: embedded Markov chain + conversion matrix, with
/// the embedded stationary solve optionally warm-started from a neighbouring
/// grid point's nu vector.
DspnSolution solve_mrgp(const ReachabilityGraph& graph, const DspnSolveOptions& options) {
    const std::size_t n = graph.state_count();
    if (n == 1) {
        DspnSolution out;
        out.pi = {1.0};
        return out;
    }
    MVREJU_OBS_SPAN(span, "dspn.steady_state");
    span.arg("states", static_cast<double>(n));
    check_irreducible(graph);

    // Embedded Markov chain P over tangible states (regeneration points) and
    // conversion matrix C: C(i, m) = expected time spent in tangible marking
    // m during one regeneration period started in i. Periods are analysed
    // independently per start state, so fan the rows out over the task pool;
    // each index writes only its own slot, keeping the result deterministic.
    // Small graphs stay serial: thread spawn would dominate, and callers
    // (parameter sweeps) may already be running many solves concurrently.
    std::vector<RegenerationRow> rows(n);
    util::parallel_for(
        n, [&](std::size_t i) { rows[i] = analyze_regeneration_period(graph, i); },
        n >= 512 ? 0 : 1);
    return solve_mrgp_from_rows(n, rows, options);
}

}  // namespace

DspnSolution dspn_solve(const ReachabilityGraph& graph, const DspnSolveOptions& options) {
    if (!graph.has_deterministic()) return solve_spn(graph, options);
    return solve_mrgp(graph, options);
}

std::vector<DspnSolution> dspn_solve_family(
    const std::vector<const ReachabilityGraph*>& graphs,
    const std::vector<DspnSolveOptions>& options) {
    if (graphs.size() != options.size())
        throw std::invalid_argument("dspn_solve_family: graphs/options size mismatch");
    if (graphs.empty()) return {};
    if (graphs.size() == 1) return {dspn_solve(*graphs[0], options[0])};

    const std::size_t n = graphs[0]->state_count();
    for (const ReachabilityGraph* g : graphs) {
        if (g == nullptr) throw std::invalid_argument("dspn_solve_family: null graph");
        if (g->state_count() != n)
            throw std::invalid_argument(
                "dspn_solve_family: members have different state spaces");
    }
    // Without a deterministic transition there is no delay to share; the
    // precondition (equal rates) makes the members equal, but solve each one
    // anyway to honour the per-member warm-start options.
    if (!graphs[0]->has_deterministic()) {
        std::vector<DspnSolution> out;
        out.reserve(graphs.size());
        for (std::size_t f = 0; f < graphs.size(); ++f)
            out.push_back(dspn_solve(*graphs[f], options[f]));
        return out;
    }
    if (n == 1) {
        std::vector<DspnSolution> out(graphs.size());
        for (DspnSolution& s : out) s.pi = {1.0};
        return out;
    }

    MVREJU_OBS_SPAN(span, "dspn.solve_family");
    span.arg("states", static_cast<double>(n));
    span.arg("members", static_cast<double>(graphs.size()));
    check_irreducible(*graphs[0]);

    // rows[i][f]: regeneration row of state i for family member f, all
    // members served by one subordinated power pass per state.
    std::vector<std::vector<RegenerationRow>> rows(n);
    util::parallel_for(
        n,
        [&](std::size_t i) { rows[i] = analyze_regeneration_period_family(graphs, i); },
        n >= 512 ? 0 : 1);

    std::vector<DspnSolution> out;
    out.reserve(graphs.size());
    std::vector<RegenerationRow> member_rows(n);
    for (std::size_t f = 0; f < graphs.size(); ++f) {
        for (std::size_t i = 0; i < n; ++i) member_rows[i] = std::move(rows[i][f]);
        out.push_back(solve_mrgp_from_rows(n, member_rows, options[f]));
    }
    return out;
}

std::vector<double> spn_steady_state(const ReachabilityGraph& graph) {
    if (graph.has_deterministic())
        throw std::invalid_argument(
            "spn_steady_state: net has deterministic transitions; use dspn_steady_state");
    return solve_spn(graph, {}).pi;
}

std::vector<double> dspn_steady_state(const ReachabilityGraph& graph) {
    return dspn_solve(graph, {}).pi;
}

double expected_reward(const ReachabilityGraph& graph, const std::vector<double>& pi,
                       const RewardFn& reward) {
    if (pi.size() != graph.state_count())
        throw std::invalid_argument("expected_reward: distribution size mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < pi.size(); ++i) acc += pi[i] * reward(graph.marking(i));
    return acc;
}

double probability(const ReachabilityGraph& graph, const std::vector<double>& pi,
                   const std::function<bool(const Marking&)>& predicate) {
    return expected_reward(graph, pi, [&](const Marking& m) {
        return predicate(m) ? 1.0 : 0.0;
    });
}

double expected_firing_rate(const ReachabilityGraph& graph, const std::vector<double>& pi,
                            TransitionId t) {
    if (pi.size() != graph.state_count())
        throw std::invalid_argument("expected_firing_rate: distribution size mismatch");
    if (graph.net().kind(t) != TransitionKind::exponential)
        throw std::invalid_argument("expected_firing_rate: not an exponential transition");
    double rate = 0.0;
    for (std::size_t s = 0; s < pi.size(); ++s)
        rate += pi[s] * graph.net().rate(t, graph.marking(s));
    return rate;
}

double spn_mean_time_to(const ReachabilityGraph& graph,
                        const std::function<bool(const Marking&)>& predicate) {
    if (graph.has_deterministic())
        throw std::invalid_argument(
            "spn_mean_time_to: net has deterministic transitions; use the simulator");
    const std::size_t n = graph.state_count();

    // Transient states: those not satisfying the predicate.
    std::vector<int> transient_index(n, -1);
    std::vector<std::size_t> transient;
    std::vector<char> is_target(n, 0);
    for (std::size_t s = 0; s < n; ++s) {
        if (predicate(graph.marking(s))) {
            is_target[s] = 1;
        } else {
            transient_index[s] = static_cast<int>(transient.size());
            transient.push_back(s);
        }
    }
    if (transient.empty()) return 0.0;
    if (transient.size() == n)
        throw std::invalid_argument(
            "spn_mean_time_to: no reachable tangible marking satisfies the predicate");

    // The hitting-time system is only well-posed when every transient state
    // can reach the target set; otherwise the mean is infinite. Detect that
    // explicitly with a backward BFS from the target set.
    {
        std::vector<std::vector<std::size_t>> bwd(n);
        for (std::size_t i = 0; i < n; ++i)
            for (const ExpEdge& e : graph.exponential_edges(i)) bwd[e.target].push_back(i);
        std::vector<char> can_reach(n, 0);
        std::deque<std::size_t> queue;
        for (std::size_t s = 0; s < n; ++s) {
            if (is_target[s]) {
                can_reach[s] = 1;
                queue.push_back(s);
            }
        }
        while (!queue.empty()) {
            const std::size_t s = queue.front();
            queue.pop_front();
            for (std::size_t p : bwd[s]) {
                if (!can_reach[p]) {
                    can_reach[p] = 1;
                    queue.push_back(p);
                }
            }
        }
        for (std::size_t s : transient) {
            if (!can_reach[s])
                throw std::runtime_error(
                    "spn_mean_time_to: predicate set unreachable from tangible state '" +
                    std::to_string(s) + "' (mean first-passage time is infinite)");
        }
    }

    // Expected hitting times m satisfy, for transient i:
    //   sum_j Q(i, j) m_j = -1   with m_a = 0 on absorbing states,
    // i.e. (Q restricted to transient states) m = -1.
    const std::size_t k = transient.size();
    std::vector<Triplet> a_triplets;
    for (std::size_t row = 0; row < k; ++row) {
        const std::size_t i = transient[row];
        for (const ExpEdge& e : graph.exponential_edges(i)) {
            a_triplets.push_back({row, row, -e.rate});
            if (transient_index[e.target] >= 0)
                a_triplets.push_back(
                    {row, static_cast<std::size_t>(transient_index[e.target]), e.rate});
        }
    }
    const SparseMatrix a = SparseMatrix::from_triplets(k, k, std::move(a_triplets));
    const std::vector<double> m = num::solve_absorbing(a, std::vector<double>(k, -1.0));

    double expected = 0.0;
    for (const Branch& init : graph.initial_distribution()) {
        if (transient_index[init.target] < 0) continue;  // already inside: time 0
        expected +=
            init.probability * m[static_cast<std::size_t>(transient_index[init.target])];
    }
    return expected;
}

std::vector<double> spn_transient_distribution(const ReachabilityGraph& graph,
                                               double t) {
    if (graph.has_deterministic())
        throw std::invalid_argument(
            "spn_transient_distribution: net has deterministic transitions; use the "
            "simulator");
    std::vector<double> pi0(graph.state_count(), 0.0);
    for (const Branch& b : graph.initial_distribution()) pi0[b.target] = b.probability;
    return num::ctmc_transient(build_generator(graph), pi0, t);
}

}  // namespace mvreju::dspn
