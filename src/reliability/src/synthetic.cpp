#include "mvreju/reliability/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mvreju::reliability {

namespace {

std::size_t scaled(double fraction, std::size_t base) {
    return static_cast<std::size_t>(std::llround(fraction * static_cast<double>(base)));
}

void check_unit(double v, const char* name) {
    if (v < 0.0 || v > 1.0)
        throw std::invalid_argument(std::string("synthetic: ") + name + " outside [0,1]");
}

/// Append `count` fresh indices starting at *cursor to every set listed.
void allocate(std::vector<std::vector<std::size_t>*> members, std::size_t count,
              std::size_t& cursor, std::size_t universe) {
    if (cursor + count > universe)
        throw std::invalid_argument("synthetic: sets do not fit into the universe");
    for (std::size_t k = 0; k < count; ++k) {
        for (auto* set : members) set->push_back(cursor);
        ++cursor;
    }
}

}  // namespace

ErrorSetFamily make_pair_family(std::size_t universe, double p1, double p2,
                                double alpha) {
    check_unit(p1, "p1");
    check_unit(p2, "p2");
    check_unit(alpha, "alpha");
    const std::size_t n1 = scaled(p1, universe);
    const std::size_t n2 = scaled(p2, universe);
    const std::size_t shared = scaled(alpha, std::max(n1, n2));
    if (shared > std::min(n1, n2))
        throw std::invalid_argument("synthetic: intersection exceeds the smaller set");

    ErrorSetFamily family;
    family.universe = universe;
    family.sets.resize(2);
    std::size_t cursor = 0;
    allocate({&family.sets[0], &family.sets[1]}, shared, cursor, universe);
    allocate({&family.sets[0]}, n1 - shared, cursor, universe);
    allocate({&family.sets[1]}, n2 - shared, cursor, universe);
    return family;
}

ErrorSetFamily make_triple_family(std::size_t universe, double p1, double p2, double p3,
                                  double alpha12, double alpha13, double alpha23) {
    for (auto [v, name] : {std::pair{p1, "p1"}, {p2, "p2"}, {p3, "p3"},
                           {alpha12, "alpha12"}, {alpha13, "alpha13"},
                           {alpha23, "alpha23"}})
        check_unit(v, name);

    const std::size_t n1 = scaled(p1, universe);
    const std::size_t n2 = scaled(p2, universe);
    const std::size_t n3 = scaled(p3, universe);
    const std::size_t i12 = scaled(alpha12, std::max(n1, n2));
    const std::size_t i13 = scaled(alpha13, std::max(n1, n3));
    const std::size_t i23 = scaled(alpha23, std::max(n2, n3));
    // The triple-overlap convention under which Eq. (2) is exact.
    const std::size_t triple = scaled(alpha12 * alpha13, n1);

    if (triple > std::min({i12, i13, i23}))
        throw std::invalid_argument("synthetic: triple overlap exceeds a pairwise one");
    const std::size_t only12 = i12 - triple;
    const std::size_t only13 = i13 - triple;
    const std::size_t only23 = i23 - triple;
    if (only12 + only13 + triple > n1 || only12 + only23 + triple > n2 ||
        only13 + only23 + triple > n3)
        throw std::invalid_argument("synthetic: intersections exceed a set size");

    ErrorSetFamily family;
    family.universe = universe;
    family.sets.resize(3);
    auto* e1 = &family.sets[0];
    auto* e2 = &family.sets[1];
    auto* e3 = &family.sets[2];
    std::size_t cursor = 0;
    allocate({e1, e2, e3}, triple, cursor, universe);
    allocate({e1, e2}, only12, cursor, universe);
    allocate({e1, e3}, only13, cursor, universe);
    allocate({e2, e3}, only23, cursor, universe);
    allocate({e1}, n1 - only12 - only13 - triple, cursor, universe);
    allocate({e2}, n2 - only12 - only23 - triple, cursor, universe);
    allocate({e3}, n3 - only13 - only23 - triple, cursor, universe);
    return family;
}

double empirical_failure(const ErrorSetFamily& family, std::size_t threshold) {
    if (family.universe == 0) throw std::invalid_argument("empirical_failure: empty");
    std::vector<std::size_t> hits(family.universe, 0);
    for (const auto& set : family.sets)
        for (std::size_t sample : set) ++hits.at(sample);
    std::size_t failures = 0;
    for (std::size_t count : hits)
        if (count >= threshold) ++failures;
    return static_cast<double>(failures) / static_cast<double>(family.universe);
}

}  // namespace mvreju::reliability
