#include "mvreju/reliability/functions.hpp"

#include <algorithm>
#include <stdexcept>

namespace mvreju::reliability {

namespace {

void check_state(int i, int j, int k, int n) {
    if (i < 0 || j < 0 || k < 0 || i + j + k != n)
        throw std::invalid_argument("state_reliability: invalid (i,j,k) state");
}

double mean(const std::vector<double>& values) {
    if (values.empty()) throw std::invalid_argument("mean: empty input");
    double acc = 0.0;
    for (double v : values) acc += v;
    return acc / static_cast<double>(values.size());
}

}  // namespace

bool params_sane(const Params& params) noexcept {
    return params.p >= 0.0 && params.p <= params.p_prime && params.p_prime <= 1.0 &&
           params.alpha >= 0.0 && params.alpha <= 1.0;
}

bool within_two_version_boundary(const Params& params) noexcept {
    return params.p * (2.0 - params.alpha) <= 1.0;
}

bool within_three_version_boundary(const Params& params) noexcept {
    return params.p * (3.0 * (1.0 - params.alpha) + params.alpha * params.alpha) <= 1.0;
}

double lyons_failure(double p) noexcept {
    return 3.0 * (1.0 - p) * p * p + p * p * p;
}

double ege_failure(double p, double alpha) noexcept {
    return 3.0 * alpha * p * (1.0 - alpha) + alpha * alpha * p;
}

double wen_machida_failure(double p1, double p2, double a12, double a13,
                           double a23) noexcept {
    return a12 * p1 + a13 * p1 + a23 * p2 - 2.0 * a12 * a13 * p1;
}

double r_single(int i, int j, int k, const Params& params) {
    check_state(i, j, k, 1);
    if (i == 1) return 1.0 - params.p;         // R_{1,0,0}
    if (j == 1) return 1.0 - params.p_prime;   // R_{0,1,0}
    return 0.0;                                // R_{0,0,1}: no functional module
}

double r_two(int i, int j, int k, const Params& params) {
    check_state(i, j, k, 2);
    const auto [p, pp, a] = params;
    if (k == 2) return 0.0;                     // R_{0,0,2}
    if (k == 1) return r_single(i, j, 0, params);  // degraded to one module
    // Two functional modules (Eq. 4).
    if (i == 2) return 1.0 - a * p;                         // R_{2,0,0}
    if (j == 2) return 1.0 - a * pp;                        // R_{0,2,0}
    return 1.0 - ((p + pp) / 2.0) * a;                      // R_{1,1,0}
}

double r_three(int i, int j, int k, const Params& params) {
    check_state(i, j, k, 3);
    const auto [p, pp, a] = params;
    if (k >= 1) return r_two(i, j, k - 1, params);  // degraded system
    // Three functional modules (Eq. 5).
    if (i == 3) return 1.0 - (3.0 * a * p * (1.0 - a) + a * a) * p;    // R_{3,0,0}
    if (j == 3) return 1.0 - (3.0 * a * pp * (1.0 - a) + a * a) * pp;  // R_{0,3,0}
    const double s = p + pp;
    if (i == 2) return 1.0 - (a * p + a * s * (1.0 - s / 2.0));        // R_{2,1,0}
    return 1.0 - (a * pp + a * s * (1.0 - s / 2.0));                   // R_{1,2,0}
}

double state_reliability(int i, int j, int k, const Params& params) {
    switch (i + j + k) {
        case 1: return r_single(i, j, k, params);
        case 2: return r_two(i, j, k, params);
        case 3: return r_three(i, j, k, params);
        default:
            throw std::invalid_argument("state_reliability: supported for n in {1,2,3}");
    }
}

double fit_p(const std::vector<double>& healthy_accuracies) {
    return 1.0 - mean(healthy_accuracies);
}

double fit_p_prime(const std::vector<double>& compromised_accuracies) {
    return 1.0 - mean(compromised_accuracies);
}

double alpha_pair(const std::vector<std::size_t>& errors_a,
                  const std::vector<std::size_t>& errors_b) {
    const std::size_t larger = std::max(errors_a.size(), errors_b.size());
    if (larger == 0) return 0.0;  // both error-free: no measurable dependency
    std::vector<std::size_t> intersection;
    std::set_intersection(errors_a.begin(), errors_a.end(), errors_b.begin(),
                          errors_b.end(), std::back_inserter(intersection));
    return static_cast<double>(intersection.size()) / static_cast<double>(larger);
}

double fit_alpha(const std::vector<std::vector<std::size_t>>& error_sets) {
    if (error_sets.size() < 2)
        throw std::invalid_argument("fit_alpha: need at least two error sets");
    double acc = 0.0;
    std::size_t pairs = 0;
    for (std::size_t a = 0; a < error_sets.size(); ++a) {
        for (std::size_t b = a + 1; b < error_sets.size(); ++b) {
            acc += alpha_pair(error_sets[a], error_sets[b]);
            ++pairs;
        }
    }
    return acc / static_cast<double>(pairs);
}

Params fit_params(const std::vector<double>& healthy_accuracies,
                  const std::vector<double>& compromised_accuracies,
                  const std::vector<std::vector<std::size_t>>& error_sets) {
    return {fit_p(healthy_accuracies), fit_p_prime(compromised_accuracies),
            fit_alpha(error_sets)};
}

}  // namespace mvreju::reliability
