#pragma once

// Output-reliability functions of Section V-B of the paper.
//
// A system state is (i, j, k): number of ML modules that are healthy (i),
// compromised-but-functional (j) and non-functional (k). `p` is the output
// failure probability of a healthy module, `p_prime` (> p) of a compromised
// module, and `alpha` the error-probability dependency between modules
// (Eq. 8-9). R_{i,j,k} follows the reliability matrices R_f2 (Eq. 4) and
// R_f3 (Eq. 5); a state with fewer functional modules degrades to the
// smaller system's function (e.g. R_{2,0,1} of the three-version system is
// the two-version R_{2,0,0}).
//
// Note on Eq. (1) vs Eq. (5): the paper's Eq. (1) (after Ege et al.) reads
// F = 3*alpha*p*(1-alpha) + alpha^2*p, while the matrix entries of Eq. (5)
// use R_{3,0,0} = 1 - [3*alpha*p*(1-alpha) + alpha^2] * p. The two differ by
// a factor p on the first term. We implement Eq. (5) as printed because it
// reproduces every value of the paper's Table III to all nine published
// decimal places (verified in tests/reliability_test.cpp).

#include <cstddef>
#include <vector>

namespace mvreju::reliability {

/// Model parameters fitted from module accuracies and error sets (Eq. 6-9).
struct Params {
    double p = 0.0;        ///< output failure probability, healthy state
    double p_prime = 0.0;  ///< output failure probability, compromised state
    double alpha = 0.0;    ///< error probability dependency between modules
};

/// The constants the paper fits on GTSRB (Section VI-A) and uses for
/// Tables III-V and Fig. 4.
[[nodiscard]] constexpr Params paper_params() noexcept {
    return {0.062892584, 0.240406440, 0.369952542};
}

/// Timing parameters of the DSPN models (Table IV defaults).
struct TimingParams {
    double mttc = 1523.0;                ///< 1/lambda_c, mean time to compromise
    double mttf = 1523.0;                ///< 1/lambda, compromised -> non-functional
    double reactive_duration = 0.5;      ///< 1/mu, reactive rejuvenation time
    double proactive_duration = 0.5;     ///< 1/mu_r, proactive rejuvenation time
    double rejuvenation_interval = 300;  ///< 1/gamma, proactive trigger period
};

/// Basic sanity: 0 <= p <= p' <= 1 and 0 <= alpha <= 1.
[[nodiscard]] bool params_sane(const Params& params) noexcept;

/// Two-version boundary of Section V-B2: p * (2 - alpha) <= 1.
[[nodiscard]] bool within_two_version_boundary(const Params& params) noexcept;

/// Three-version boundary of Section V-B3: p * (3(1-alpha) + alpha^2) <= 1.
[[nodiscard]] bool within_three_version_boundary(const Params& params) noexcept;

/// Failure probability of a 3-version system with independent errors
/// (Lyons & Vanderkulk): F = 3(1-p)p^2 + p^3.
[[nodiscard]] double lyons_failure(double p) noexcept;

/// Eq. (1) (Ege et al.): F = 3*alpha*p*(1-alpha) + alpha^2*p.
[[nodiscard]] double ege_failure(double p, double alpha) noexcept;

/// Eq. (2) (Wen & Machida): per-model error probabilities and pairwise
/// dependencies. `p1`, `p2` are the error probabilities of models 1 and 2;
/// a12/a13/a23 the pairwise error-set intersections.
[[nodiscard]] double wen_machida_failure(double p1, double p2, double a12, double a13,
                                         double a23) noexcept;

/// Reliability of a state of the *single*-version system.
/// Valid states: (1,0,0), (0,1,0), (0,0,1).
[[nodiscard]] double r_single(int i, int j, int k, const Params& params);

/// Reliability matrix R_f2 (Eq. 4) of the two-version system; i+j+k == 2.
[[nodiscard]] double r_two(int i, int j, int k, const Params& params);

/// Reliability matrix R_f3 (Eq. 5) of the three-version system; i+j+k == 3.
[[nodiscard]] double r_three(int i, int j, int k, const Params& params);

/// Dispatch on total module count n = i+j+k in {1, 2, 3}. States of a larger
/// system with non-functional modules degrade to the smaller system's
/// function, exactly as Eq. (4)/(5) encode.
[[nodiscard]] double state_reliability(int i, int j, int k, const Params& params);

/// --- Parameter fitting (Section VI-A) ---

/// p = 1 - mean(healthy accuracies)               (Eq. 6)
[[nodiscard]] double fit_p(const std::vector<double>& healthy_accuracies);

/// p' = 1 - mean(compromised accuracies)          (Eq. 7)
[[nodiscard]] double fit_p_prime(const std::vector<double>& compromised_accuracies);

/// alpha_{i,j} = |E_i ^ E_j| / max(|E_i|, |E_j|)  (Eq. 8)
/// Error sets are given as sorted-unique sample indices.
[[nodiscard]] double alpha_pair(const std::vector<std::size_t>& errors_a,
                                const std::vector<std::size_t>& errors_b);

/// alpha = mean of the three pairwise alphas       (Eq. 9)
[[nodiscard]] double fit_alpha(const std::vector<std::vector<std::size_t>>& error_sets);

/// Convenience: full fit from accuracies + error sets.
[[nodiscard]] Params fit_params(const std::vector<double>& healthy_accuracies,
                                const std::vector<double>& compromised_accuracies,
                                const std::vector<std::vector<std::size_t>>& error_sets);

}  // namespace mvreju::reliability
