#pragma once

// Synthetic error-set construction and empirical voting evaluation.
//
// The paper's reliability functions are stated over error *sets*: E_i is the
// set of inputs module i misclassifies, p_i = |E_i|/N, and the dependency
// alpha_{i,j} = |E_i ^ E_j| / max(|E_i|, |E_j|) (Eq. 8). This module builds
// concrete families of sets with prescribed sizes and intersections and
// evaluates the voting rules on them by counting, which lets the tests check
// the closed-form equations (Eq. 2, Eq. 4) against ground truth instead of
// trusting the algebra.

#include <cstddef>
#include <vector>

namespace mvreju::reliability {

/// A family of error sets over the universe {0, ..., universe-1}, stored as
/// sorted index vectors (the same representation Eq. 8 fitting consumes).
struct ErrorSetFamily {
    std::size_t universe = 0;
    std::vector<std::vector<std::size_t>> sets;
};

/// Build two error sets with |E_1| = round(p1*N), |E_2| = round(p2*N) and
/// |E_1 ^ E_2| = round(alpha * max(|E_1|, |E_2|)). Requires the sizes to fit
/// into the universe. Throws std::invalid_argument otherwise.
[[nodiscard]] ErrorSetFamily make_pair_family(std::size_t universe, double p1, double p2,
                                              double alpha);

/// Build three error sets with pairwise intersections
/// |E_i ^ E_j| = round(alpha_ij * max(|E_i|, |E_j|)) and triple intersection
/// |E_1 ^ E_2 ^ E_3| = round(alpha12 * alpha13 * |E_1|) — the inclusion
/// structure under which the paper's Eq. (2) is exact.
[[nodiscard]] ErrorSetFamily make_triple_family(std::size_t universe, double p1,
                                                double p2, double p3, double alpha12,
                                                double alpha13, double alpha23);

/// Fraction of the universe on which at least `threshold` of the family's
/// sets contain the sample — the empirical probability that `threshold` or
/// more modules err simultaneously (system failure under majority voting
/// when threshold == 2).
[[nodiscard]] double empirical_failure(const ErrorSetFamily& family,
                                       std::size_t threshold = 2);

}  // namespace mvreju::reliability
