#pragma once

// Minimal NetPBM image I/O so generated datasets and sensor grids can be
// inspected visually (every image viewer opens PPM/PGM).

#include <filesystem>

#include "mvreju/ml/tensor.hpp"

namespace mvreju::data {

/// Write a (3, H, W) tensor with values in [0, 1] as a binary PPM (P6).
/// Values outside [0, 1] are clamped.
void write_ppm(const ml::Tensor& image, const std::filesystem::path& path);

/// Write a (1, H, W) tensor as a binary PGM (P5).
void write_pgm(const ml::Tensor& image, const std::filesystem::path& path);

/// Read a binary PPM written by write_ppm back into a (3, H, W) tensor.
[[nodiscard]] ml::Tensor read_ppm(const std::filesystem::path& path);

}  // namespace mvreju::data
