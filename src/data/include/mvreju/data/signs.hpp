#pragma once

// Procedural traffic-sign dataset — the GTSRB stand-in (see DESIGN.md,
// substitution 1). Sixteen classes formed by four sign shapes x four inner
// glyphs, rendered to small RGB images with realistic nuisance variation
// (position/scale/rotation jitter, brightness, additive sensor noise).
// The paper only consumes GTSRB through per-model accuracies and error sets
// (Eq. 6-9); this generator produces a classification task whose difficulty
// lands trained models in the same accuracy band (~0.92-0.96 healthy).

#include <cstdint>
#include <string>

#include "mvreju/ml/model.hpp"

namespace mvreju::data {

/// Sign outline shapes (loosely: prohibition, warning, yield, priority).
enum class SignShape : int { circle = 0, triangle_up = 1, triangle_down = 2, diamond = 3 };

/// Inner glyphs standing in for the pictograms.
enum class SignGlyph : int { bar_vertical = 0, bar_horizontal = 1, dot = 2, cross = 3 };

inline constexpr int kSignClasses = 16;

/// Class label from shape and glyph.
[[nodiscard]] constexpr int sign_label(SignShape shape, SignGlyph glyph) noexcept {
    return static_cast<int>(shape) * 4 + static_cast<int>(glyph);
}

/// Human-readable class name, e.g. "circle/dot".
[[nodiscard]] std::string sign_class_name(int label);

/// Continuous nuisance parameters of a single rendering.
struct SignPose {
    double center_x = 8.0;    ///< pixels
    double center_y = 8.0;
    double radius = 6.0;      ///< sign half-size in pixels
    double rotation = 0.0;    ///< radians
    double brightness = 1.0;  ///< multiplicative
    double noise_sigma = 0.0; ///< additive Gaussian, per channel
    std::uint64_t noise_seed = 0;
};

/// Render one sign of class `label` into a (3, side, side) tensor in [0, 1].
[[nodiscard]] ml::Tensor render_sign(int label, std::size_t side, const SignPose& pose);

/// Dataset generation configuration. Defaults reproduce the repository's
/// reference experiments (Table II pipeline).
struct SignDatasetConfig {
    std::size_t train_count = 4000;
    std::size_t test_count = 1000;
    std::size_t side = 16;
    double noise_min = 0.06;   ///< per-image noise sigma drawn uniformly
    double noise_max = 0.26;
    std::uint64_t seed = 38;   ///< the paper pins seed 38; so do we
};

/// Train/test split with disjoint RNG streams (changing train_count never
/// changes the test set).
struct SignDataset {
    ml::Dataset train;
    ml::Dataset test;
};

/// Generate the full dataset. Classes are balanced round-robin.
[[nodiscard]] SignDataset make_traffic_signs(const SignDatasetConfig& config);

}  // namespace mvreju::data
