#include "mvreju/data/image_io.hpp"

#include <fstream>
#include <stdexcept>
#include <string>

namespace mvreju::data {

namespace {

unsigned char to_byte(float v) {
    if (v < 0.0f) v = 0.0f;
    if (v > 1.0f) v = 1.0f;
    return static_cast<unsigned char>(v * 255.0f + 0.5f);
}

void check_shape(const ml::Tensor& image, std::size_t channels, const char* what) {
    if (image.rank() != 3 || image.shape()[0] != channels)
        throw std::invalid_argument(std::string(what) + ": expected (" +
                                    std::to_string(channels) + ", H, W) tensor");
}

}  // namespace

void write_ppm(const ml::Tensor& image, const std::filesystem::path& path) {
    check_shape(image, 3, "write_ppm");
    const std::size_t h = image.shape()[1];
    const std::size_t w = image.shape()[2];
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("write_ppm: cannot open " + path.string());
    out << "P6\n" << w << " " << h << "\n255\n";
    for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
            for (std::size_t c = 0; c < 3; ++c)
                out.put(static_cast<char>(to_byte(image.at3(c, y, x))));
        }
    }
    if (!out) throw std::runtime_error("write_ppm: write failed for " + path.string());
}

void write_pgm(const ml::Tensor& image, const std::filesystem::path& path) {
    check_shape(image, 1, "write_pgm");
    const std::size_t h = image.shape()[1];
    const std::size_t w = image.shape()[2];
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("write_pgm: cannot open " + path.string());
    out << "P5\n" << w << " " << h << "\n255\n";
    for (std::size_t y = 0; y < h; ++y)
        for (std::size_t x = 0; x < w; ++x)
            out.put(static_cast<char>(to_byte(image.at3(0, y, x))));
    if (!out) throw std::runtime_error("write_pgm: write failed for " + path.string());
}

ml::Tensor read_ppm(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("read_ppm: cannot open " + path.string());
    std::string magic;
    std::size_t w = 0;
    std::size_t h = 0;
    int maxval = 0;
    in >> magic >> w >> h >> maxval;
    if (magic != "P6" || maxval != 255 || w == 0 || h == 0)
        throw std::runtime_error("read_ppm: unsupported PPM header in " + path.string());
    in.get();  // single whitespace after the header

    ml::Tensor image({3, h, w});
    for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
            for (std::size_t c = 0; c < 3; ++c) {
                const int byte = in.get();
                if (byte < 0) throw std::runtime_error("read_ppm: truncated file");
                image.at3(c, y, x) = static_cast<float>(byte) / 255.0f;
            }
        }
    }
    return image;
}

}  // namespace mvreju::data
