#include "mvreju/data/signs.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mvreju/util/rng.hpp"

namespace mvreju::data {

namespace {

struct Rgb {
    float r, g, b;
};

/// Per-shape colour scheme: border colour and fill colour.
struct Scheme {
    Rgb border;
    Rgb fill;
};

Scheme scheme_for(SignShape shape) {
    switch (shape) {
        case SignShape::circle:         // prohibition: red ring, white fill
            return {{0.85f, 0.10f, 0.12f}, {0.95f, 0.95f, 0.95f}};
        case SignShape::triangle_up:    // warning: red border, pale fill
            return {{0.85f, 0.10f, 0.12f}, {0.98f, 0.92f, 0.75f}};
        case SignShape::triangle_down:  // yield: red border, white fill
            return {{0.80f, 0.08f, 0.10f}, {0.97f, 0.97f, 0.97f}};
        case SignShape::diamond:        // priority: yellow fill, white border
            return {{0.97f, 0.97f, 0.92f}, {0.95f, 0.75f, 0.15f}};
    }
    throw std::logic_error("scheme_for: bad shape");
}

/// Signed distance to the sign outline; negative inside. Coordinates are
/// already centred, rotated, and scaled so the nominal outline is at 1.
double shape_distance(SignShape shape, double x, double y) {
    switch (shape) {
        case SignShape::circle:
            return std::sqrt(x * x + y * y) - 1.0;
        case SignShape::triangle_up: {
            // Equilateral triangle pointing up, inscribed in the unit circle.
            const double k = std::sqrt(3.0);
            // Three half-planes.
            const double d1 = -y - 0.5;                    // bottom edge (y up)
            const double d2 = (k * x + y) / 2.0 - 0.5;     // right edge
            const double d3 = (-k * x + y) / 2.0 - 0.5;    // left edge
            return std::max({d1, d2, d3});
        }
        case SignShape::triangle_down:
            return shape_distance(SignShape::triangle_up, x, -y);
        case SignShape::diamond:
            return (std::abs(x) + std::abs(y)) / 1.2 - 1.0;
    }
    throw std::logic_error("shape_distance: bad shape");
}

/// True when (x, y) (unit coordinates) falls on the inner glyph.
bool on_glyph(SignGlyph glyph, double x, double y) {
    switch (glyph) {
        case SignGlyph::bar_vertical:
            return std::abs(x) < 0.16 && std::abs(y) < 0.52;
        case SignGlyph::bar_horizontal:
            return std::abs(y) < 0.16 && std::abs(x) < 0.52;
        case SignGlyph::dot:
            return x * x + y * y < 0.30 * 0.30 * 3.0;
        case SignGlyph::cross:
            return (std::abs(x - y) < 0.20 || std::abs(x + y) < 0.20) &&
                   std::abs(x) < 0.5 && std::abs(y) < 0.5;
    }
    throw std::logic_error("on_glyph: bad glyph");
}

float clamp01(double v) {
    return static_cast<float>(v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v));
}

}  // namespace

std::string sign_class_name(int label) {
    if (label < 0 || label >= kSignClasses)
        throw std::out_of_range("sign_class_name: bad label");
    static constexpr const char* shapes[] = {"circle", "triangle-up", "triangle-down",
                                             "diamond"};
    static constexpr const char* glyphs[] = {"vbar", "hbar", "dot", "cross"};
    return std::string(shapes[label / 4]) + "/" + glyphs[label % 4];
}

ml::Tensor render_sign(int label, std::size_t side, const SignPose& pose) {
    if (label < 0 || label >= kSignClasses)
        throw std::out_of_range("render_sign: bad label");
    if (side < 8) throw std::invalid_argument("render_sign: side too small");
    const auto shape = static_cast<SignShape>(label / 4);
    const auto glyph = static_cast<SignGlyph>(label % 4);
    const Scheme scheme = scheme_for(shape);

    util::Rng noise(pose.noise_seed);
    // Slightly varied background (asphalt/sky-ish grey).
    const float bg_base = static_cast<float>(noise.uniform(0.25, 0.55));
    const float bg_tint = static_cast<float>(noise.uniform(-0.05, 0.10));

    ml::Tensor img({3, side, side});
    const double cos_r = std::cos(pose.rotation);
    const double sin_r = std::sin(pose.rotation);
    // Border thickness and glyph scale in unit coordinates. Triangles have a
    // much smaller incircle than circles/diamonds, so their border is thinner
    // and the glyph is shrunk to fit the interior.
    const bool is_triangle =
        shape == SignShape::triangle_up || shape == SignShape::triangle_down;
    const double border = is_triangle ? 0.16 : 0.28;
    const double glyph_scale = is_triangle ? 0.55 : 1.0;

    for (std::size_t py = 0; py < side; ++py) {
        for (std::size_t px = 0; px < side; ++px) {
            // Pixel centre in unit sign coordinates (y grows upward).
            const double dx = (static_cast<double>(px) + 0.5 - pose.center_x);
            const double dy = (pose.center_y - (static_cast<double>(py) + 0.5));
            const double ux = (cos_r * dx + sin_r * dy) / pose.radius;
            const double uy = (-sin_r * dx + cos_r * dy) / pose.radius;

            Rgb colour{bg_base, bg_base, bg_base + bg_tint};
            const double dist = shape_distance(shape, ux, uy);
            if (dist < 0.0) {
                colour = (dist > -border) ? scheme.border : scheme.fill;
                if (dist <= -border &&
                    on_glyph(glyph, ux / glyph_scale, uy / glyph_scale))
                    colour = {0.08f, 0.08f, 0.10f};
            }

            const float n_r = static_cast<float>(noise.normal(0.0, pose.noise_sigma));
            const float n_g = static_cast<float>(noise.normal(0.0, pose.noise_sigma));
            const float n_b = static_cast<float>(noise.normal(0.0, pose.noise_sigma));
            const auto bright = static_cast<float>(pose.brightness);
            img.at3(0, py, px) = clamp01(colour.r * bright + n_r);
            img.at3(1, py, px) = clamp01(colour.g * bright + n_g);
            img.at3(2, py, px) = clamp01(colour.b * bright + n_b);
        }
    }
    return img;
}

namespace {

ml::Dataset generate_split(const SignDatasetConfig& config, std::size_t count,
                           util::Rng rng) {
    ml::Dataset out;
    out.num_classes = kSignClasses;
    out.images.reserve(count);
    out.labels.reserve(count);
    const double half = static_cast<double>(config.side) / 2.0;
    for (std::size_t i = 0; i < count; ++i) {
        const int label = static_cast<int>(i % kSignClasses);
        SignPose pose;
        pose.center_x = half + rng.uniform(-1.6, 1.6);
        pose.center_y = half + rng.uniform(-1.6, 1.6);
        pose.radius = rng.uniform(0.33, 0.45) * static_cast<double>(config.side);
        pose.rotation = rng.uniform(-0.2, 0.2);
        pose.brightness = rng.uniform(0.55, 1.25);
        pose.noise_sigma = rng.uniform(config.noise_min, config.noise_max);
        pose.noise_seed = rng();
        out.images.push_back(render_sign(label, config.side, pose));
        out.labels.push_back(label);
    }
    return out;
}

}  // namespace

SignDataset make_traffic_signs(const SignDatasetConfig& config) {
    if (config.train_count == 0 || config.test_count == 0)
        throw std::invalid_argument("make_traffic_signs: empty split");
    if (config.noise_min > config.noise_max || config.noise_min < 0.0)
        throw std::invalid_argument("make_traffic_signs: bad noise range");
    util::Rng root(config.seed);
    SignDataset out;
    out.train = generate_split(config, config.train_count, root.split(1));
    out.test = generate_split(config, config.test_count, root.split(2));
    return out;
}

}  // namespace mvreju::data
