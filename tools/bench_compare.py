#!/usr/bin/env python3
"""Gate benchmark JSON files against checked-in baselines.

Each BENCH_<name>.json produced by a bench binary is compared against
bench/baselines/BENCH_<name>.json, which lists gates over dotted metric
paths (array indices as [i]):

    {"path": "fig4_grid.bitwise_equal_to_cold", "equals": true}
        exact equality — a flipped correctness gate fails the build
    {"path": "fig4_grid.speedup", "min": 3.0}            hard floor
    {"path": "fig4_grid.unique_solves", "max": 102}      hard ceiling
    {"path": "min_speedup_1thread", "baseline": 4.5, "tolerance": 0.2}
        regression gate: current >= baseline * (1 - tolerance); pass
        "direction": "lower" for lower-is-better metrics
    {"path": "...", "ratio_of": ["num.path", "den.path"], "baseline": ...}
        same, over a quotient of two metrics (machine-robust speedups)
    {"path": "avx2_gemm_speedup", "min": 2.0, "when": "avx2_supported"}
        conditional gate: only checked when the "when" path resolves truthy
        in the *current* blob — skipped (not failed) otherwise. Used for
        per-backend rows that depend on host capabilities, e.g. the avx2
        kernels on a CPU without AVX2.

Exit status 0 when every gate in every file passes, 1 otherwise.
"""

import argparse
import json
import re
import sys
from pathlib import Path

_INDEX = re.compile(r"^(.*)\[(\d+)\]$")


def lookup(blob, path):
    """Resolve a dotted path with optional [i] array indices."""
    value = blob
    for part in path.split("."):
        match = _INDEX.match(part)
        if match:
            value = value[match.group(1)][int(match.group(2))]
        else:
            value = value[part]
    return value


def fmt_value(value):
    """Compact cell rendering: short floats, bare bools, repr for the rest."""
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def check_gate(blob, gate):
    """Return (passed, message, measured, constraint) for one gate."""
    if "ratio_of" in gate:
        num_path, den_path = gate["ratio_of"]
        current = lookup(blob, num_path) / lookup(blob, den_path)
        label = f"{num_path} / {den_path}"
    else:
        current = lookup(blob, gate["path"])
        label = gate["path"]

    if "equals" in gate:
        expected = gate["equals"]
        ok = current == expected
        return (ok, f"{label} == {expected!r} (got {current!r})",
                current, f"== {fmt_value(expected)}")
    if "min" in gate:
        ok = current >= gate["min"]
        return (ok, f"{label} >= {gate['min']} (got {current})",
                current, f">= {fmt_value(gate['min'])}")
    if "max" in gate:
        ok = current <= gate["max"]
        return (ok, f"{label} <= {gate['max']} (got {current})",
                current, f"<= {fmt_value(gate['max'])}")
    if "baseline" in gate:
        baseline = gate["baseline"]
        tolerance = gate.get("tolerance", 0.2)
        if gate.get("direction", "higher") == "lower":
            bound = baseline * (1.0 + tolerance)
            ok = current <= bound
            return (ok, (f"{label} <= {bound:g} "
                         f"(baseline {baseline:g} +{tolerance:.0%}, got {current})"),
                    current, f"<= {bound:g} (base {baseline:g})")
        bound = baseline * (1.0 - tolerance)
        ok = current >= bound
        return (ok, (f"{label} >= {bound:g} "
                     f"(baseline {baseline:g} -{tolerance:.0%}, got {current})"),
                current, f">= {bound:g} (base {baseline:g})")
    raise ValueError(f"gate has no comparison: {gate}")


def gate_label(gate):
    if "path" in gate:
        return gate["path"]
    if "ratio_of" in gate:
        return " / ".join(gate["ratio_of"])
    return str(gate)


def render_table(rows):
    """Aligned per-gate summary: gate, measured, constraint, verdict."""
    header = ("gate", "measured", "constraint", "verdict")
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    for row in (header, tuple("-" * w for w in widths)) + tuple(rows):
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)).rstrip())
    return "\n".join(lines)


def compare(current_path, baseline_path):
    """Check every gate; returns (all_passed, summary_rows)."""
    with open(current_path) as f:
        blob = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)
    if blob.get("bench") != baseline.get("bench"):
        print(f"FAIL {current_path}: bench name {blob.get('bench')!r} "
              f"!= baseline {baseline.get('bench')!r}")
        return False, [(str(current_path), "-", "bench name match", "FAIL")]

    failures = 0
    rows = []
    for gate in baseline["gates"]:
        if "when" in gate:
            try:
                condition = lookup(blob, gate["when"])
            except (KeyError, IndexError, TypeError):
                condition = False
            if not condition:
                print(f"  skip {gate.get('path', gate)} "
                      f"(condition {gate['when']!r} not met)")
                rows.append((gate_label(gate), "-",
                             f"when {gate['when']}", "skip"))
                continue
        try:
            ok, message, measured, constraint = check_gate(blob, gate)
        except (KeyError, IndexError, TypeError) as error:
            ok, message = False, f"{gate.get('path', gate)}: unresolvable ({error!r})"
            measured, constraint = None, "unresolvable"
        status = "ok  " if ok else "FAIL"
        print(f"  {status} {message}")
        rows.append((gate_label(gate), fmt_value(measured), constraint,
                     "pass" if ok else "FAIL"))
        failures += 0 if ok else 1
    verdict = "pass" if failures == 0 else f"{failures} gate(s) failed"
    print(f"{current_path}: {verdict}")
    return failures == 0, rows


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", default="bench/baselines",
                        help="directory holding baseline BENCH_*.json files")
    parser.add_argument("current", nargs="+",
                        help="benchmark JSON files produced by this run")
    args = parser.parse_args(argv)

    all_ok = True
    summaries = []
    for current in args.current:
        baseline = Path(args.baseline_dir) / Path(current).name
        if not baseline.exists():
            print(f"FAIL {current}: no baseline at {baseline}")
            all_ok = False
            summaries.append((current, [(str(current), "-",
                                         f"baseline at {baseline}", "FAIL")]))
            continue
        print(f"== {current} vs {baseline}")
        ok, rows = compare(current, baseline)
        all_ok &= ok
        summaries.append((current, rows))

    # Per-gate summary table on every run — pass or fail — so a CI log (or a
    # human skimming one) shows each gate's measured value and margin at a
    # glance without scrolling through the per-file checks.
    print("\n== summary")
    for current, rows in summaries:
        print(f"-- {current}")
        print(render_table(rows))
    print(f"overall: {'pass' if all_ok else 'FAIL'}")
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
