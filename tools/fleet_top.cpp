// fleet_top: live fleet-telemetry dashboard over the exporter's /fleet
// endpoint.
//
//   ./build/tools/fleet_top [--host 127.0.0.1] --port <exporter port>
//       [--interval-ms 1000]   poll period for the live screen
//       [--once]               fetch + render one screen, no loop
//       [--from <file>]        render a saved /fleet document (no sockets)
//
// All the substance lives in mvreju/serve/dashboard.hpp (golden-tested);
// this is argument parsing, a tiny HTTP/1.0 GET and the refresh loop.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "mvreju/serve/dashboard.hpp"
#include "mvreju/util/args.hpp"

namespace {

/// One-shot HTTP/1.0 GET; returns the response body. Throws on connect or
/// protocol failure, including non-200 status (the exporter answers 503
/// until a fleet document has been published).
std::string http_get(const std::string& host, int port, const std::string& path) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket: " + std::string(strerror(errno)));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw std::runtime_error("bad host " + host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(fd);
        throw std::runtime_error("connect " + host + ":" + std::to_string(port) +
                                 ": " + strerror(errno));
    }
    const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
    for (std::size_t sent = 0; sent < request.size();) {
        const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
        if (n <= 0) {
            ::close(fd);
            throw std::runtime_error("send failed");
        }
        sent += static_cast<std::size_t>(n);
    }
    std::string response;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n < 0) {
            ::close(fd);
            throw std::runtime_error("recv failed");
        }
        if (n == 0) break;
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    const std::size_t header_end = response.find("\r\n\r\n");
    if (header_end == std::string::npos)
        throw std::runtime_error("malformed HTTP response");
    const std::size_t status_at = response.find(' ');
    if (status_at == std::string::npos ||
        response.compare(status_at + 1, 3, "200") != 0)
        throw std::runtime_error(
            "HTTP " + response.substr(status_at + 1,
                                      response.find('\r') - status_at - 1));
    return response.substr(header_end + 4);
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

}  // namespace

int main(int argc, char** argv) {
    const mvreju::util::Args args(argc, argv);
    const std::string from = args.get("from", std::string{});
    const bool once = args.has("once");

    try {
        if (!from.empty()) {
            const auto doc = mvreju::serve::dashboard::parse(read_file(from));
            std::fputs(mvreju::serve::dashboard::render(doc).c_str(), stdout);
            return 0;
        }

        const std::string host = args.host();
        const int port = args.port(0);
        if (port == 0) {
            std::fprintf(stderr,
                         "usage: fleet_top --port <exporter port> [--host H] "
                         "[--interval-ms N] [--once] | --from <file>\n");
            return 2;
        }
        const int interval_ms = args.get_int("interval-ms", 1000, 10, 60000);

        for (;;) {
            std::string screen;
            try {
                const std::string body = http_get(host, port, "/fleet");
                screen = mvreju::serve::dashboard::render(
                    mvreju::serve::dashboard::parse(body));
            } catch (const std::exception& poll_error) {
                screen = std::string("fleet_top: ") + poll_error.what() + "\n";
                if (once) {
                    std::fputs(screen.c_str(), stderr);
                    return 1;
                }
            }
            if (once) {
                std::fputs(screen.c_str(), stdout);
                return 0;
            }
            // Home + clear-to-end keeps the screen steady between refreshes.
            std::fputs("\x1b[H\x1b[J", stdout);
            std::fputs(screen.c_str(), stdout);
            std::fflush(stdout);
            std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
        }
    } catch (const mvreju::util::ArgError& e) {
        std::fprintf(stderr, "fleet_top: %s\n", e.what());
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "fleet_top: %s\n", e.what());
        return 1;
    }
}
