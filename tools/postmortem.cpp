// postmortem: render a flight-recorder dump as a per-module event timeline.
//
//   ./build/tools/postmortem <postmortem-*.json> [--no-meta] [--no-metrics]
//       [--max-events <n>]     cap the timeline at <n> events per module
//
// All the substance lives in mvreju/obs/postmortem.hpp (golden-tested); this
// is argument parsing and I/O.

#include <cstdio>
#include <exception>
#include <string>

#include "mvreju/obs/postmortem.hpp"
#include "mvreju/util/args.hpp"

int main(int argc, char** argv) {
    std::string path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.size() >= 2 && arg.compare(0, 2, "--") == 0) {
            if (arg == "--max-events") ++i;  // flag value, not the path
            continue;
        }
        path = arg;
        break;
    }
    if (path.empty()) {
        std::fprintf(stderr,
                     "usage: postmortem <postmortem-*.json> [--no-meta] "
                     "[--no-metrics] [--max-events <n>]\n");
        return 2;
    }

    const mvreju::util::Args args(argc, argv);
    mvreju::obs::postmortem::RenderOptions options;
    options.show_meta = !args.has("no-meta");
    options.show_metrics = !args.has("no-metrics");
    options.max_events_per_module =
        static_cast<std::size_t>(args.get("max-events", 0));

    try {
        const auto dump = mvreju::obs::postmortem::load(path);
        std::fputs(mvreju::obs::postmortem::render(dump, options).c_str(), stdout);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "postmortem: %s\n", e.what());
        return 1;
    }
    return 0;
}
