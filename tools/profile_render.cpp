// profile_render: digest a folded-stacks CPU profile (the format
// obs::Profiler::folded() emits and GET /profile serves) into a hotspot
// table, or re-emit it folded for flamegraph tooling.
//
//   ./build/tools/profile_render [file]            hotspot table from a file
//   curl -s localhost:9100/profile | ./build/tools/profile_render
//       [--top N]      rows in the hotspot table (default 20)
//       [--folded]     pass the parsed profile back out folded (sorted,
//                      merged) instead of rendering the table — pipe this
//                      into flamegraph.pl or speedscope
//
// Pure text in, pure text out: the parsing/ranking lives in
// mvreju/obs/profile_report.hpp (golden-tested, builds even under
// -DMVREJU_OBS=OFF), so this tool works on profiles captured anywhere.

#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "mvreju/obs/profile_report.hpp"
#include "mvreju/util/args.hpp"

namespace {

std::string read_input(const std::string& path) {
    if (path.empty() || path == "-") {
        std::ostringstream out;
        out << std::cin.rdbuf();
        return out.str();
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

}  // namespace

int main(int argc, char** argv) {
    const mvreju::util::Args args(argc, argv);
    try {
        // First non-flag positional is the input file; default is stdin.
        std::string path;
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            if (a == "--top") { ++i; continue; }
            if (a.rfind("--", 0) == 0) continue;
            path = a;
            break;
        }
        const auto top_n = static_cast<std::size_t>(
            args.get_int("top", 20, 1, 10000));

        const std::string text = read_input(path);
        const auto stacks = mvreju::obs::parse_folded(text);
        if (stacks.empty()) {
            std::fprintf(stderr,
                         "profile_render: no folded samples in input (is the "
                         "profiler running? start with --profile or "
                         "MVREJU_PROFILE=on)\n");
            return 1;
        }

        if (args.has("folded")) {
            // Canonical re-emission: parse_folded already merged and the
            // stacks keep their root-first order, so this output feeds
            // straight into flamegraph.pl / speedscope.
            for (const auto& stack : stacks) {
                std::string line = stack.stage;
                for (const auto& frame : stack.frames) line += ";" + frame;
                std::printf("%s %llu\n", line.c_str(),
                            static_cast<unsigned long long>(stack.count));
            }
            return 0;
        }

        std::fputs(mvreju::obs::render_hotspots(stacks, top_n).c_str(), stdout);
        return 0;
    } catch (const mvreju::util::ArgError& e) {
        std::fprintf(stderr, "profile_render: %s\n", e.what());
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "profile_render: %s\n", e.what());
        return 1;
    }
}
